package dpu

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udp"
)

// Cluster is a running group of n stacks — all hosted by this process
// (the default), or just the subset selected with WithLocalStacks when
// the group spans several processes over a shared transport.
type Cluster struct {
	n          int
	net        *simnet.Network // nil when running over an external transport
	tr         transport.Transport
	stacks     []*kernel.Stack // indexed by stack id; nil for remote stacks
	impls      *abcast.Registry
	membership bool

	// Legacy fixed per-stack streams (see Deliveries/Switches/Views).
	deliveries []chan Delivery
	switches   []chan SwitchEvent
	views      []chan View
	dropped    []atomic.Uint64

	// Per-stack backpressure windows for Node.Broadcast: one token per
	// own broadcast still undelivered locally.
	outstanding []chan struct{}

	// Per-stack subscription registries. The locks are per stack so a
	// Block-policy publisher parked on one stack's slow consumer cannot
	// stall Subscribe/Close traffic on other stacks.
	subLocks []sync.RWMutex
	subs     [][]*Subscription

	closed    chan struct{}
	closeOnce sync.Once
	faultWarn sync.Once
}

// New assembles and starts a cluster of n stacks.
func New(n int, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dpu: cluster size %d < 1", n)
	}
	o := &options{
		protocol: ProtocolCT,
		net: simnet.Config{
			BaseLatency:  100 * time.Microsecond,
			Jitter:       50 * time.Microsecond,
			BandwidthBps: 100e6,
		},
		grace:          500 * time.Millisecond,
		buffer:         8192,
		maxOutstanding: 1024,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.maxOutstanding < 1 {
		o.maxOutstanding = 1
	}

	// Validate configuration and build the registry before constructing
	// any transport, so every early error return leaves the caller's
	// transport untouched and nothing is leaked.
	local := make(map[int]bool, n)
	if len(o.local) == 0 {
		for i := 0; i < n; i++ {
			local[i] = true
		}
	}
	for _, id := range o.local {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("%w: local stack %d not in [0,%d)", ErrOutOfRange, id, n)
		}
		local[id] = true
	}
	impls := abcast.StandardRegistry()
	for _, im := range o.extraImpls {
		if err := impls.Register(im); err != nil {
			return nil, err
		}
	}

	var (
		net *simnet.Network
		tr  = o.transport
	)
	if tr == nil {
		net = simnet.New(o.net)
		tr = transport.Sim(net)
	}

	reg := kernel.NewRegistry()
	reg.MustRegister(udp.Factory(tr))
	reg.MustRegister(rp2p.Factory(rp2p.Config{}))
	reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	reg.MustRegister(fd.Factory(fd.Config{}))
	reg.MustRegister(consensus.Factory())
	for _, cv := range o.consVariants {
		reg.MustRegister(consensus.FactoryWith(cv))
	}
	reg.MustRegister(core.Factory(core.Config{
		InitialProtocol: o.protocol,
		Impls:           impls,
		Grace:           o.grace,
		RetryLostChange: true,
		BatchDelay:      o.batchDelay,
		BatchBytes:      o.batchBytes,
	}))
	if o.membership {
		reg.MustRegister(gm.Factory())
	}

	c := &Cluster{
		n:           n,
		net:         net,
		tr:          tr,
		stacks:      make([]*kernel.Stack, n),
		impls:       impls,
		membership:  o.membership,
		deliveries:  make([]chan Delivery, n),
		switches:    make([]chan SwitchEvent, n),
		views:       make([]chan View, n),
		dropped:     make([]atomic.Uint64, n),
		outstanding: make([]chan struct{}, n),
		subLocks:    make([]sync.RWMutex, n),
		subs:        make([][]*Subscription, n),
		closed:      make(chan struct{}),
	}
	peers := make([]kernel.Addr, n)
	for i := range peers {
		peers[i] = kernel.Addr(i)
	}
	for i := 0; i < n; i++ {
		if !local[i] {
			continue
		}
		st := kernel.NewStack(kernel.Config{
			Addr: kernel.Addr(i), Peers: peers, Registry: reg,
			Seed: o.net.Seed + int64(i), Tracer: o.tracer,
		})
		c.stacks[i] = st
		c.deliveries[i] = make(chan Delivery, o.buffer)
		c.switches[i] = make(chan SwitchEvent, 64)
		c.views[i] = make(chan View, 64)
		c.outstanding[i] = make(chan struct{}, o.maxOutstanding)
		i := i
		var buildErr error
		err := st.DoSync(func() {
			if _, e := st.CreateProtocol(core.Protocol); e != nil {
				buildErr = e
				return
			}
			// A transport bind failure inside the build (real sockets:
			// port conflict, bad address) can only be recorded by the
			// udp module; surface it instead of returning a cluster
			// that silently drops all traffic.
			if um, ok := st.Provider(udp.Service).(*udp.Module); ok {
				if e := um.OpenErr(); e != nil {
					buildErr = e
					return
				}
			}
			if o.membership {
				if _, e := st.CreateProtocol(gm.Protocol); e != nil {
					buildErr = e
					return
				}
			}
			pump := &pumpModule{Base: kernel.NewBase(st, "dpu/pump"), c: c, stack: i}
			st.AddModule(pump)
			st.Subscribe(core.Service, pump)
			if o.membership {
				st.Subscribe(gm.Service, pump)
			}
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if buildErr != nil {
			c.Close()
			return nil, buildErr
		}
	}
	return c, nil
}

// pumpModule forwards public-service indications into the cluster's
// subscriptions and legacy channels, and completes the backpressure
// window for the stack's own deliveries.
type pumpModule struct {
	kernel.Base
	c     *Cluster
	stack int
}

func (p *pumpModule) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	switch v := ind.(type) {
	case core.Deliver:
		kind, body, err := envelope.Unwrap(v.Data)
		if err != nil || (kind != envelope.KindApp && kind != envelope.KindAppPaced) {
			return
		}
		if kind == envelope.KindAppPaced && v.Origin == kernel.Addr(p.stack) {
			// One of this stack's own paced broadcasts completed the
			// loop: free the window slot it acquired in Node.Broadcast.
			select {
			case <-p.c.outstanding[p.stack]:
			default:
			}
		}
		d := Delivery{Stack: p.stack, Origin: int(v.Origin), Data: body, At: time.Now()}
		p.c.publishDelivery(p.stack, d)
		select {
		case p.c.deliveries[p.stack] <- d:
		default:
			p.c.dropped[p.stack].Add(1)
		}
	case core.Switched:
		ev := SwitchEvent{Stack: p.stack, Epoch: v.Sn, Protocol: v.Protocol, At: v.At, Reissued: v.Reissued}
		p.c.publishSwitch(p.stack, ev)
		select {
		case p.c.switches[p.stack] <- ev:
		default:
		}
	case gm.NewView:
		members := make([]int, len(v.View.Members))
		for i, m := range v.View.Members {
			members[i] = int(m)
		}
		view := View{ID: v.View.ID, Members: members}
		p.c.publishView(p.stack, view)
		select {
		case p.c.views[p.stack] <- view:
		default:
		}
	}
}

// check validates that the stack index is in range, hosted by this
// process, and still running.
func (c *Cluster) check(stack int) error {
	if stack < 0 || stack >= c.n {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, stack, c.n)
	}
	if c.stacks[stack] == nil {
		return fmt.Errorf("%w: stack %d", ErrRemoteStack, stack)
	}
	if !c.stacks[stack].Running() {
		return fmt.Errorf("%w: stack %d", ErrNotRunning, stack)
	}
	return nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.n }

// ChangeProtocolAll replaces the atomic-broadcast protocol on every
// stack and blocks until every stack hosted by this process has
// completed the switch (remote stacks confirm on their own hosts via
// WaitForEpoch). The change is initiated by the lowest-indexed local
// running stack; the returned SwitchEvent is the initiator's.
func (c *Cluster) ChangeProtocolAll(ctx context.Context, protocol string) (SwitchEvent, error) {
	var initiator *Node
	for i := 0; i < c.n; i++ {
		if n, err := c.Node(i); err == nil {
			initiator = n
			break
		}
	}
	if initiator == nil {
		return SwitchEvent{}, fmt.Errorf("%w: no local running stack", ErrNotRunning)
	}
	ev, err := initiator.ChangeProtocol(ctx, protocol)
	if err != nil {
		return SwitchEvent{}, err
	}
	for i := 0; i < c.n; i++ {
		if i == initiator.id {
			continue
		}
		n, err := c.Node(i)
		if err != nil {
			continue // remote or stopped stacks cannot be awaited here
		}
		if _, err := n.WaitForEpoch(ctx, ev.Epoch); err != nil {
			return ev, fmt.Errorf("dpu: waiting for stack %d: %w", i, err)
		}
	}
	return ev, nil
}

// WaitForEpoch blocks until the local stack's replacement layer has
// reached the given epoch (seqNumber ≥ epoch) and returns its status.
// This is the deterministic switch barrier for observers that did not
// initiate a change — e.g. the non-initiating processes of a
// multi-process group.
func (c *Cluster) WaitForEpoch(ctx context.Context, stack int, epoch uint64) (Status, error) {
	n, err := c.Node(stack)
	if err != nil {
		return Status{}, err
	}
	return n.WaitForEpoch(ctx, epoch)
}

// Broadcast atomically broadcasts data from the stack: it will be
// delivered exactly once, in the same total order, on every stack.
//
// Deprecated: use Node.Broadcast, which applies backpressure against
// the outstanding-broadcast window and honors a context.
func (c *Cluster) Broadcast(stack int, data []byte) error {
	if err := c.check(stack); err != nil {
		return err
	}
	c.stacks[stack].Call(core.Service, core.Broadcast{Data: envelope.Wrap(envelope.KindApp, data)})
	return nil
}

// ChangeProtocol replaces the atomic-broadcast protocol on every stack,
// on the fly, without interrupting service (Algorithm 1). Any stack may
// initiate. The protocol name is validated immediately
// (ErrUnknownProtocol); completion is asynchronous.
//
// Deprecated: use Node.ChangeProtocol, which blocks until the local
// switch completes and returns the resulting SwitchEvent.
func (c *Cluster) ChangeProtocol(stack int, protocol string) error {
	if err := c.check(stack); err != nil {
		return err
	}
	if _, ok := c.impls.Lookup(protocol); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownProtocol, protocol)
	}
	c.stacks[stack].Call(core.Service, core.ChangeProtocol{Protocol: protocol})
	return nil
}

// Deliveries returns the stack's totally-ordered delivery stream. It
// returns nil — which blocks forever when received from — for an
// out-of-range or remote stack index.
//
// Deprecated: use Node.Subscribe, which returns typed streams with an
// explicit buffer and lag policy, and surfaces bad indexes as errors.
func (c *Cluster) Deliveries(stack int) <-chan Delivery {
	if stack < 0 || stack >= c.n {
		return nil
	}
	return c.deliveries[stack]
}

// Switches returns the stack's protocol-replacement events (nil for an
// out-of-range or remote stack index).
//
// Deprecated: use Node.Subscribe or the SwitchEvent returned by
// Node.ChangeProtocol.
func (c *Cluster) Switches(stack int) <-chan SwitchEvent {
	if stack < 0 || stack >= c.n {
		return nil
	}
	return c.switches[stack]
}

// Views returns the stack's membership views (requires WithMembership;
// nil for an out-of-range or remote stack index).
//
// Deprecated: use Node.Subscribe.
func (c *Cluster) Views(stack int) <-chan View {
	if stack < 0 || stack >= c.n {
		return nil
	}
	return c.views[stack]
}

// Dropped reports deliveries discarded because the consumer of
// Deliveries(stack) lagged behind the buffer (0 for an out-of-range
// index). Subscriptions count their own drops (Subscription.Dropped).
func (c *Cluster) Dropped(stack int) uint64 {
	if stack < 0 || stack >= c.n {
		return 0
	}
	return c.dropped[stack].Load()
}

// Status returns a snapshot of the stack's replacement layer.
//
// Deprecated: use Node.Status, which takes a context instead of this
// wrapper's fixed 10-second timeout.
func (c *Cluster) Status(stack int) (Status, error) {
	n, err := c.Node(stack)
	if err != nil {
		return Status{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return n.Status(ctx)
}

// Join adds a member to the logical group view (requires WithMembership).
func (c *Cluster) Join(stack, member int) error {
	n, err := c.Node(stack)
	if err != nil {
		return err
	}
	return n.Join(member)
}

// Leave removes a member from the logical group view.
func (c *Cluster) Leave(stack, member int) error {
	n, err := c.Node(stack)
	if err != nil {
		return err
	}
	return n.Leave(member)
}

// Crash kills the stack abruptly: its events are discarded and its
// network traffic stops, modelling a machine crash. Only local stacks
// can be crashed; over an external transport the network isolation is
// skipped (the halted stack simply goes silent).
func (c *Cluster) Crash(stack int) error {
	if stack < 0 || stack >= c.n {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, stack, c.n)
	}
	if c.stacks[stack] == nil {
		return fmt.Errorf("%w: stack %d", ErrRemoteStack, stack)
	}
	if c.net != nil {
		c.net.SetDown(simnet.Addr(stack), true)
	}
	c.stacks[stack].Crash()
	return nil
}

// PartitionLink cuts the network link between two stacks. It requires
// the built-in simulated network: over WithTransport it returns
// ErrUnsupported (real links cannot be cut from here).
func (c *Cluster) PartitionLink(a, b int) error {
	if err := c.checkLink(a, b); err != nil {
		return err
	}
	c.net.Cut(simnet.Addr(a), simnet.Addr(b))
	return nil
}

// HealLink restores the link between two stacks. It requires the
// built-in simulated network: over WithTransport it returns
// ErrUnsupported.
func (c *Cluster) HealLink(a, b int) error {
	if err := c.checkLink(a, b); err != nil {
		return err
	}
	c.net.Heal(simnet.Addr(a), simnet.Addr(b))
	return nil
}

func (c *Cluster) checkLink(a, b int) error {
	if a < 0 || a >= c.n || b < 0 || b >= c.n {
		return fmt.Errorf("%w: link %d-%d not in [0,%d)", ErrOutOfRange, a, b, c.n)
	}
	if c.net == nil {
		return fmt.Errorf("%w: link faults need the built-in simulated network", ErrUnsupported)
	}
	return nil
}

// Partition cuts the network link between two stacks. It requires the
// built-in simulated network and is a silent no-op over WithTransport.
//
// Deprecated: use PartitionLink, which reports ErrUnsupported instead
// of silently doing nothing.
func (c *Cluster) Partition(a, b int) {
	if c.net == nil {
		c.warnFaultNoop()
		return
	}
	c.net.Cut(simnet.Addr(a), simnet.Addr(b))
}

// Heal restores the link between two stacks. It requires the built-in
// simulated network and is a silent no-op over WithTransport.
//
// Deprecated: use HealLink, which reports ErrUnsupported instead of
// silently doing nothing.
func (c *Cluster) Heal(a, b int) {
	if c.net == nil {
		c.warnFaultNoop()
		return
	}
	c.net.Heal(simnet.Addr(a), simnet.Addr(b))
}

func (c *Cluster) warnFaultNoop() {
	c.faultWarn.Do(func() {
		log.Printf("dpu: Partition/Heal are no-ops over an external transport; use PartitionLink/HealLink to get an error instead")
	})
}

// Stack exposes the underlying kernel stack for advanced composition
// (binding custom modules, inspecting services); nil for an
// out-of-range index or a stack not hosted by this process. See
// internal/kernel's concurrency contract.
func (c *Cluster) Stack(stack int) *kernel.Stack {
	if stack < 0 || stack >= c.n {
		return nil
	}
	return c.stacks[stack]
}

// Close shuts the cluster down — including the transport, whether
// built-in or passed via WithTransport — closes every subscription and
// the local stacks' legacy channels, and unblocks any Node call still
// waiting (ErrClosed).
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.closed) // unblocks Node waits and Block-policy publishers
		c.tr.Close()
		// Close every local stack, including crashed ones: Crash stops
		// the executor asynchronously, and Close waits for it to exit,
		// which guarantees no pump event is still mid-publish when the
		// channels below are closed.
		for _, st := range c.stacks {
			if st != nil {
				st.Close()
			}
		}
		var subs []*Subscription
		for i := range c.subs {
			c.subLocks[i].Lock()
			subs = append(subs, c.subs[i]...)
			c.subLocks[i].Unlock()
		}
		for _, s := range subs {
			s.Close()
		}
		for i := range c.deliveries {
			if c.deliveries[i] != nil {
				close(c.deliveries[i])
				close(c.switches[i])
				close(c.views[i])
			}
		}
	})
}
