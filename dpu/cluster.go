package dpu

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/kernel"
	"repro/internal/policy"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udp"
	"repro/internal/vclock"
)

// stackSlot is the per-stack state of one locally hosted member: the
// kernel stack plus the event-stream plumbing. Slots are allocated once
// and referenced by pointer, so the cluster's id space can grow at
// runtime (AddNode) without invalidating publishers already running.
type stackSlot struct {
	id int
	st *kernel.Stack

	// Legacy fixed streams (see Deliveries/Switches/Views).
	deliveries chan Delivery
	switches   chan SwitchEvent
	views      chan View
	dropped    atomic.Uint64

	// Backpressure window for Node.Broadcast: one token per own
	// broadcast still undelivered locally.
	outstanding chan struct{}

	// Subscription registry. The lock is per slot so a Block-policy
	// publisher parked on one stack's slow consumer cannot stall
	// Subscribe/Close traffic on other stacks.
	subMu sync.RWMutex
	subs  []*Subscription

	// retired flips once when the member is evicted from the view (or
	// crashed by the test harness) and the slot's stack is halted.
	retired atomic.Bool
}

// Cluster is a running group of stacks — all hosted by this process
// (the default), or just the subset selected with WithLocalStacks when
// the group spans several processes over a shared transport. With
// membership enabled the group is elastic: AddNode admits new members
// at runtime and Node.Evict (or the auto-evictor) removes them, with
// every layer of every stack reconfigured by the installed view.
type Cluster struct {
	net        *simnet.Network // nil when running over an external transport
	tr         transport.Transport
	faulty     *transport.FaultyTransport // non-nil with WithFaults; wraps tr's inner fabric
	impls      *abcast.Registry
	membership bool
	opts       *options
	clock      vclock.Clock
	pool       *kernel.Pool // shared executor pool (WithExecutorPool); nil otherwise

	// mu guards the slot table (the id space), which grows on AddNode.
	mu    sync.RWMutex
	slots []*stackSlot // indexed by stack id; nil for remote stacks

	// engine is the adaptation loop started by WithAdaptive (nil
	// otherwise); see adaptive.go.
	engine *policy.Engine

	closed    chan struct{}
	closeOnce sync.Once
	faultWarn sync.Once
}

// defaultOptions returns the option block New and Join start from.
func defaultOptions() *options {
	return &options{
		protocol: ProtocolCT,
		net: simnet.Config{
			BaseLatency:  100 * time.Microsecond,
			Jitter:       50 * time.Microsecond,
			BandwidthBps: 100e6,
		},
		grace:          500 * time.Millisecond,
		buffer:         8192,
		maxOutstanding: 1024,
		joinTimeout:    60 * time.Second,
		joinRetry:      joinRetryConfig{attempts: 1, base: 100 * time.Millisecond, max: 5 * time.Second},
	}
}

// buildImpls assembles the atomic-broadcast implementation registry
// (the bundled three plus registered extras).
func buildImpls(o *options) (*abcast.Registry, error) {
	impls := abcast.StandardRegistry()
	for _, im := range o.extraImpls {
		if err := impls.Register(im); err != nil {
			return nil, err
		}
	}
	return impls, nil
}

// New assembles and starts a cluster of n stacks.
func New(n int, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dpu: cluster size %d < 1", n)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if o.maxOutstanding < 1 {
		o.maxOutstanding = 1
	}

	// Validate configuration and build the registry before constructing
	// any transport, so every early error return leaves the caller's
	// transport untouched and nothing is leaked.
	local := make(map[int]bool, n)
	if len(o.local) == 0 {
		for i := 0; i < n; i++ {
			local[i] = true
		}
	}
	for _, id := range o.local {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("%w: local stack %d not in [0,%d)", ErrOutOfRange, id, n)
		}
		local[id] = true
	}
	if o.adaptive != nil && o.adaptive.policy == nil {
		return nil, fmt.Errorf("dpu: WithAdaptive requires a policy (e.g. dpu.LossSensitivePolicy)")
	}
	impls, err := buildImpls(o)
	if err != nil {
		return nil, err
	}
	if o.clock == nil {
		o.clock = vclock.Wall
	} else if o.transport != nil && vclock.IsVirtual(o.clock) {
		return nil, fmt.Errorf("%w: WithClock(virtual) requires the built-in simulated network", ErrUnsupported)
	}

	var (
		net *simnet.Network
		tr  = o.transport
	)
	if tr == nil {
		o.net.Clock = o.clock
		net = simnet.New(o.net)
		tr = transport.Sim(net)
	}
	var faulty *transport.FaultyTransport
	if o.faults {
		// A distinct seed stream from simnet's, so the decorator's fate
		// rolls never correlate with the fabric's own loss/jitter rolls.
		faulty = transport.Faulty(tr, transport.FaultConfig{Seed: o.net.Seed ^ 0x5eedfa17, Clock: o.clock})
		tr = faulty
	}

	c := &Cluster{
		net:        net,
		tr:         tr,
		faulty:     faulty,
		impls:      impls,
		membership: o.membership,
		opts:       o,
		clock:      o.clock,
		slots:      make([]*stackSlot, n),
		closed:     make(chan struct{}),
	}
	if o.pooled {
		c.pool = kernel.NewPool(o.poolSize)
	}
	endpoints := make(map[kernel.Addr]string, len(o.endpoints))
	for id, ep := range o.endpoints {
		endpoints[kernel.Addr(id)] = ep
	}
	reg := c.newRegistry(bootCut{protocol: o.protocol, endpoints: endpoints})
	peers := make([]kernel.Addr, n)
	for i := range peers {
		peers[i] = kernel.Addr(i)
	}
	for i := 0; i < n; i++ {
		if !local[i] {
			continue
		}
		if _, err := c.buildStack(i, peers, reg); err != nil {
			c.Close()
			return nil, err
		}
	}
	if o.adaptive != nil {
		c.startAdaptive(o.adaptive)
	}
	return c, nil
}

// bootCut is the coherent cut a stack boots from: founders start at the
// zero cut; a joiner starts at the cut its join committed in, served by
// the sponsor (see AddNode and Join).
type bootCut struct {
	protocol  string
	epoch     uint64
	viewID    uint64
	nextID    kernel.Addr
	endpoints map[kernel.Addr]string
}

// newRegistry assembles the kernel factory registry for one boot cut.
// Founders share a single registry; each joiner gets its own, because
// the replacement module's initial epoch is part of the factory
// configuration.
func (c *Cluster) newRegistry(cut bootCut) *kernel.Registry {
	o := c.opts
	reg := kernel.NewRegistry()
	reg.MustRegister(udp.Factory(c.tr))
	reg.MustRegister(rp2p.Factory(rp2p.Config{}))
	reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	reg.MustRegister(fd.Factory(o.fd))
	reg.MustRegister(consensus.Factory())
	for _, cv := range o.consVariants {
		reg.MustRegister(consensus.FactoryWith(cv))
	}
	reg.MustRegister(core.Factory(core.Config{
		InitialProtocol: cut.protocol,
		InitialEpoch:    cut.epoch,
		InitialViewID:   cut.viewID,
		InitialNextID:   cut.nextID,
		Endpoints:       cut.endpoints,
		Impls:           c.impls,
		Grace:           o.grace,
		RetryLostChange: true,
		BatchDelay:      o.batchDelay,
		BatchBytes:      o.batchBytes,
	}))
	if o.membership {
		reg.MustRegister(gm.FactoryWith(gm.Config{
			AutoEvict:     o.autoEvict,
			InitialViewID: cut.viewID,
		}))
	}
	return reg
}

// buildStack creates, wires and starts one locally hosted stack and
// installs its slot. id may lie beyond the current slot table (a
// joiner), in which case the table grows.
func (c *Cluster) buildStack(id int, peers []kernel.Addr, reg *kernel.Registry) (*stackSlot, error) {
	o := c.opts
	st := kernel.NewStack(kernel.Config{
		Addr: kernel.Addr(id), Peers: peers, Registry: reg,
		Seed: o.net.Seed + int64(id), Tracer: o.tracer, Clock: c.clock,
		Pool: c.pool,
	})
	// A virtual clock must observe the stack's executor for quiescence;
	// registering here covers founders and runtime joiners alike.
	if vr, ok := c.clock.(vclock.Registrar); ok {
		vr.Register(st)
	}
	s := &stackSlot{
		id:          id,
		st:          st,
		deliveries:  make(chan Delivery, o.buffer),
		switches:    make(chan SwitchEvent, 64),
		views:       make(chan View, 64),
		outstanding: make(chan struct{}, o.maxOutstanding),
	}
	var buildErr error
	err := st.DoSync(func() {
		if _, e := st.CreateProtocol(core.Protocol); e != nil {
			buildErr = e
			return
		}
		// A transport bind failure inside the build (real sockets: port
		// conflict, bad address) can only be recorded by the udp module;
		// surface it instead of returning a stack that silently drops
		// all traffic.
		if um, ok := st.Provider(udp.Service).(*udp.Module); ok {
			if e := um.OpenErr(); e != nil {
				buildErr = e
				return
			}
		}
		if c.membership {
			if _, e := st.CreateProtocol(gm.Protocol); e != nil {
				buildErr = e
				return
			}
		}
		pump := &pumpModule{Base: kernel.NewBase(st, "dpu/pump"), c: c, slot: s}
		st.AddModule(pump)
		st.Subscribe(core.Service, pump)
		if c.membership {
			st.Subscribe(gm.Service, pump)
		}
	})
	if err == nil {
		err = buildErr
	}
	if err != nil {
		st.Close()
		return nil, err
	}
	c.mu.Lock()
	for len(c.slots) <= id {
		c.slots = append(c.slots, nil)
	}
	c.slots[id] = s
	c.mu.Unlock()
	return s, nil
}

// pumpModule forwards public-service indications into the slot's
// subscriptions and legacy channels, completes the backpressure window
// for the stack's own deliveries, and retires the slot when the member
// is evicted from the view.
type pumpModule struct {
	kernel.Base
	c    *Cluster
	slot *stackSlot
}

func (p *pumpModule) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	s := p.slot
	switch v := ind.(type) {
	case core.Deliver:
		kind, body, err := envelope.Unwrap(v.Data)
		if err != nil || (kind != envelope.KindApp && kind != envelope.KindAppPaced) {
			return
		}
		if kind == envelope.KindAppPaced && v.Origin == kernel.Addr(s.id) {
			// One of this stack's own paced broadcasts completed the
			// loop: free the window slot it acquired in Node.Broadcast.
			select {
			case <-s.outstanding:
			default:
			}
		}
		d := Delivery{Stack: s.id, Origin: int(v.Origin), Data: body, At: p.Stk.Now()}
		s.publishDelivery(p.c, d)
		select {
		case s.deliveries <- d:
		default:
			s.dropped.Add(1)
		}
	case core.Switched:
		ev := SwitchEvent{Stack: s.id, Epoch: v.Sn, Protocol: v.Protocol, At: v.At, Reissued: v.Reissued}
		s.publishSwitch(p.c, ev)
		select {
		case s.switches <- ev:
		default:
		}
	case gm.NewView:
		members := make([]int, len(v.View.Members))
		selfIn := false
		for i, m := range v.View.Members {
			members[i] = int(m)
			if int(m) == s.id {
				selfIn = true
			}
		}
		view := View{ID: v.View.ID, Members: members}
		s.publishView(p.c, view)
		select {
		case s.views <- view:
		default:
		}
		if !selfIn {
			// This member was evicted: the view above is the last event it
			// publishes; halt the stack so handles fail with ErrNotRunning
			// instead of hanging on a group that no longer talks to it.
			p.c.retire(s)
		}
		// A view installed: transport routes for members gone from every
		// local stack's view can now be retired.
		p.c.pruneRoutes()
	}
}

// pruneRoutes retires transport routes for addresses that no locally
// hosted stack still lists as a peer. Views install on each stack's
// executor independently, so the LAST local stack to apply an eviction
// performs the removal — earlier installs see the member still present
// in a sibling's peer set and leave the route alone (see the udp
// module's route-ownership note).
func (c *Cluster) pruneRoutes() {
	router, ok := c.tr.(transport.Router)
	if !ok {
		return
	}
	slots := c.localSlots()
	needed := make(map[int]bool)
	for _, s := range slots {
		needed[s.id] = true
		for _, p := range s.st.Peers() {
			needed[int(p)] = true
		}
	}
	for id := 0; id < c.N(); id++ {
		if !needed[id] {
			router.RemoveRoute(transport.Addr(id))
		}
	}
}

// retire halts an evicted (or crashed) member's stack, once.
func (c *Cluster) retire(s *stackSlot) {
	if !s.retired.CompareAndSwap(false, true) {
		return
	}
	if c.net != nil {
		c.net.SetDown(simnet.Addr(s.id), true)
	}
	s.st.Crash()
}

// slot validates a stack index: ErrOutOfRange outside the current id
// space, ErrRemoteStack for a stack hosted by another process,
// ErrNotRunning for a crashed, evicted or closed stack.
func (c *Cluster) slot(stack int) (*stackSlot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if stack < 0 || stack >= len(c.slots) {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, stack, len(c.slots))
	}
	s := c.slots[stack]
	if s == nil {
		return nil, fmt.Errorf("%w: stack %d", ErrRemoteStack, stack)
	}
	if !s.st.Running() {
		return nil, fmt.Errorf("%w: stack %d", ErrNotRunning, stack)
	}
	return s, nil
}

// localSlots snapshots the currently hosted slots, in id order.
func (c *Cluster) localSlots() []*stackSlot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*stackSlot, 0, len(c.slots))
	for _, s := range c.slots {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// check validates that the stack index is in range, hosted by this
// process, and still running.
func (c *Cluster) check(stack int) error {
	_, err := c.slot(stack)
	return err
}

// N returns the size of the cluster's id space: the founding size plus
// every member ever admitted with AddNode. Member ids are never reused,
// so evicted members leave gaps; the current membership is the view
// (Node.Subscribe with Views, or Status.Members via Node.Status).
func (c *Cluster) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.slots)
}

// ChangeProtocolAll replaces the atomic-broadcast protocol on every
// stack and blocks until every stack hosted by this process has
// completed the switch (remote stacks confirm on their own hosts via
// WaitForEpoch). The change is initiated by the lowest-indexed local
// running stack; the returned SwitchEvent is the initiator's.
func (c *Cluster) ChangeProtocolAll(ctx context.Context, protocol string) (SwitchEvent, error) {
	slots := c.localSlots()
	var initiator *Node
	for _, s := range slots {
		if s.st.Running() {
			initiator = &Node{c: c, id: s.id}
			break
		}
	}
	if initiator == nil {
		return SwitchEvent{}, fmt.Errorf("%w: no local running stack", ErrNotRunning)
	}
	ev, err := initiator.ChangeProtocol(ctx, protocol)
	if err != nil {
		return SwitchEvent{}, err
	}
	for _, s := range slots {
		if s.id == initiator.id || !s.st.Running() {
			continue
		}
		n := &Node{c: c, id: s.id}
		if _, err := n.WaitForEpoch(ctx, ev.Epoch); err != nil {
			return ev, fmt.Errorf("dpu: waiting for stack %d: %w", s.id, err)
		}
	}
	return ev, nil
}

// WaitForEpoch blocks until the local stack's replacement layer has
// reached the given epoch (seqNumber ≥ epoch) and returns its status.
// This is the deterministic switch barrier for observers that did not
// initiate a change — e.g. the non-initiating processes of a
// multi-process group. Membership changes advance the epoch too, so the
// same barrier covers view installation.
func (c *Cluster) WaitForEpoch(ctx context.Context, stack int, epoch uint64) (Status, error) {
	n, err := c.Node(stack)
	if err != nil {
		return Status{}, err
	}
	return n.WaitForEpoch(ctx, epoch)
}

// Broadcast atomically broadcasts data from the stack: it will be
// delivered exactly once, in the same total order, on every stack.
//
// Deprecated: use Node.Broadcast, which applies backpressure against
// the outstanding-broadcast window and honors a context.
func (c *Cluster) Broadcast(stack int, data []byte) error {
	s, err := c.slot(stack)
	if err != nil {
		return err
	}
	s.st.Call(core.Service, core.Broadcast{Data: envelope.Wrap(envelope.KindApp, data)})
	return nil
}

// ChangeProtocol replaces the atomic-broadcast protocol on every stack,
// on the fly, without interrupting service (Algorithm 1). Any stack may
// initiate. The protocol name is validated immediately
// (ErrUnknownProtocol); completion is asynchronous.
//
// Deprecated: use Node.ChangeProtocol, which blocks until the local
// switch completes and returns the resulting SwitchEvent.
func (c *Cluster) ChangeProtocol(stack int, protocol string) error {
	s, err := c.slot(stack)
	if err != nil {
		return err
	}
	if _, ok := c.impls.Lookup(protocol); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownProtocol, protocol)
	}
	s.st.Call(core.Service, core.ChangeProtocol{Protocol: protocol})
	return nil
}

// Deliveries returns the stack's totally-ordered delivery stream. It
// returns nil — which blocks forever when received from — for an
// out-of-range or remote stack index.
//
// Deprecated: use Node.Subscribe, which returns typed streams with an
// explicit buffer and lag policy, and surfaces bad indexes as errors.
func (c *Cluster) Deliveries(stack int) <-chan Delivery {
	if s := c.peek(stack); s != nil {
		return s.deliveries
	}
	return nil
}

// Switches returns the stack's protocol-replacement events (nil for an
// out-of-range or remote stack index).
//
// Deprecated: use Node.Subscribe or the SwitchEvent returned by
// Node.ChangeProtocol.
func (c *Cluster) Switches(stack int) <-chan SwitchEvent {
	if s := c.peek(stack); s != nil {
		return s.switches
	}
	return nil
}

// Views returns the stack's membership views (requires WithMembership;
// nil for an out-of-range or remote stack index).
//
// Deprecated: use Node.Subscribe.
func (c *Cluster) Views(stack int) <-chan View {
	if s := c.peek(stack); s != nil {
		return s.views
	}
	return nil
}

// peek returns the slot regardless of liveness (the legacy channel
// accessors keep working on crashed/evicted stacks so buffered events
// remain drainable).
func (c *Cluster) peek(stack int) *stackSlot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if stack < 0 || stack >= len(c.slots) {
		return nil
	}
	return c.slots[stack]
}

// Dropped reports deliveries discarded because the consumer of
// Deliveries(stack) lagged behind the buffer (0 for an out-of-range
// index). Subscriptions count their own drops (Subscription.Dropped).
func (c *Cluster) Dropped(stack int) uint64 {
	if s := c.peek(stack); s != nil {
		return s.dropped.Load()
	}
	return 0
}

// Status returns a snapshot of the stack's replacement layer.
//
// Deprecated: use Node.Status, which takes a context instead of this
// wrapper's fixed 10-second timeout.
func (c *Cluster) Status(stack int) (Status, error) {
	n, err := c.Node(stack)
	if err != nil {
		return Status{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return n.Status(ctx)
}

// Join re-admits a member id to the group view (requires
// WithMembership; ErrNoMembership otherwise). To admit a brand-new node
// with a fresh id and a running stack, use AddNode.
func (c *Cluster) Join(stack, member int) error {
	n, err := c.Node(stack)
	if err != nil {
		return err
	}
	return n.Join(member)
}

// Leave removes a member from the group view (requires WithMembership;
// ErrNoMembership otherwise). See Node.Evict for the confirmed variant.
func (c *Cluster) Leave(stack, member int) error {
	n, err := c.Node(stack)
	if err != nil {
		return err
	}
	return n.Leave(member)
}

// Crash kills the stack abruptly: its events are discarded and its
// network traffic stops, modelling a machine crash. Only local stacks
// can be crashed; over an external transport the network isolation is
// skipped (the halted stack simply goes silent).
func (c *Cluster) Crash(stack int) error {
	s := c.peek(stack)
	if s == nil {
		c.mu.RLock()
		size := len(c.slots)
		c.mu.RUnlock()
		if stack < 0 || stack >= size {
			return fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, stack, size)
		}
		return fmt.Errorf("%w: stack %d", ErrRemoteStack, stack)
	}
	c.retire(s)
	return nil
}

// PartitionLink cuts the network link between two stacks, in both
// directions. On the built-in simulated network the cut happens in the
// fabric; over an external transport it falls back to the WithFaults
// decorator (or a transport that is itself a FaultInjector), cutting
// both one-way directions — which is how the scenario corpus runs its
// partition timelines over real UDP and TCP sockets. ErrUnsupported
// only when neither surface exists.
func (c *Cluster) PartitionLink(a, b int) error {
	if err := c.checkLink(a, b); err != nil {
		return err
	}
	if c.net != nil {
		c.net.Cut(simnet.Addr(a), simnet.Addr(b))
		return nil
	}
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.CutOneWay(transport.Addr(a), transport.Addr(b))
	fi.CutOneWay(transport.Addr(b), transport.Addr(a))
	return nil
}

// HealLink restores the link between two stacks (both directions; see
// PartitionLink for the transport fallback rules).
func (c *Cluster) HealLink(a, b int) error {
	if err := c.checkLink(a, b); err != nil {
		return err
	}
	if c.net != nil {
		c.net.Heal(simnet.Addr(a), simnet.Addr(b))
		return nil
	}
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.HealOneWay(transport.Addr(a), transport.Addr(b))
	fi.HealOneWay(transport.Addr(b), transport.Addr(a))
	return nil
}

func (c *Cluster) checkLink(a, b int) error {
	size := c.N()
	if a < 0 || a >= size || b < 0 || b >= size {
		return fmt.Errorf("%w: link %d-%d not in [0,%d)", ErrOutOfRange, a, b, size)
	}
	return nil
}

// Partition cuts the network link between two stacks. It requires the
// built-in simulated network and is a silent no-op over WithTransport.
//
// Deprecated: use PartitionLink, which reports ErrUnsupported instead
// of silently doing nothing.
func (c *Cluster) Partition(a, b int) {
	if c.net == nil {
		c.warnFaultNoop()
		return
	}
	c.net.Cut(simnet.Addr(a), simnet.Addr(b))
}

// Heal restores the link between two stacks. It requires the built-in
// simulated network and is a silent no-op over WithTransport.
//
// Deprecated: use HealLink, which reports ErrUnsupported instead of
// silently doing nothing.
func (c *Cluster) Heal(a, b int) {
	if c.net == nil {
		c.warnFaultNoop()
		return
	}
	c.net.Heal(simnet.Addr(a), simnet.Addr(b))
}

func (c *Cluster) warnFaultNoop() {
	c.faultWarn.Do(func() {
		log.Printf("dpu: Partition/Heal are no-ops over an external transport; use PartitionLink/HealLink to get an error instead")
	})
}

// Stack exposes the underlying kernel stack for advanced composition
// (binding custom modules, inspecting services); nil for an
// out-of-range index or a stack not hosted by this process. See
// internal/kernel's concurrency contract.
func (c *Cluster) Stack(stack int) *kernel.Stack {
	if s := c.peek(stack); s != nil {
		return s.st
	}
	return nil
}

// Close shuts the cluster down — including the transport, whether
// built-in or passed via WithTransport — closes every subscription and
// the local stacks' legacy channels, and unblocks any Node call still
// waiting (ErrClosed).
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.closed) // unblocks Node waits and Block-policy publishers
		if c.engine != nil {
			// An in-flight engine switch unblocks via c.closed; Stop then
			// joins the sampling loop before the stacks go away.
			c.engine.Stop()
		}
		c.tr.Close()
		slots := c.localSlots()
		// Close every local stack, including crashed ones: Crash stops
		// the executor asynchronously, and Close waits for it to exit,
		// which guarantees no pump event is still mid-publish when the
		// channels below are closed.
		for _, s := range slots {
			s.st.Close()
		}
		if c.pool != nil {
			// After the stacks: a pool closed under live executors would
			// push every straggling slice onto transient goroutines.
			c.pool.Close()
		}
		var subs []*Subscription
		for _, s := range slots {
			s.subMu.Lock()
			subs = append(subs, s.subs...)
			s.subMu.Unlock()
		}
		for _, sub := range subs {
			sub.Close()
		}
		for _, s := range slots {
			close(s.deliveries)
			close(s.switches)
			close(s.views)
		}
	})
}
