package dpu

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/gm"
	"repro/internal/kernel"
)

// Node is a validated handle on one stack hosted by this process. It is
// the primary interaction surface of the library: every blocking
// operation takes a context, broadcasts are backpressured against the
// outstanding window, and protocol switches block until the paper's
// completion moment — seqNumber advancing locally — and return it.
//
// A Node is cheap and safe to share across goroutines. Liveness is
// re-checked on every call, so a handle obtained before a crash fails
// with ErrNotRunning afterwards rather than hanging.
type Node struct {
	c  *Cluster
	id int
}

// Node returns a handle on the stack, validating the index once:
// ErrOutOfRange for an index outside [0, N()), ErrRemoteStack for a
// stack hosted by another process, ErrNotRunning for a crashed or
// closed stack.
func (c *Cluster) Node(stack int) (*Node, error) {
	if err := c.check(stack); err != nil {
		return nil, err
	}
	return &Node{c: c, id: stack}, nil
}

// Index returns the stack index this handle addresses.
func (n *Node) Index() int { return n.id }

// stack re-validates the handle and returns the underlying stack.
func (n *Node) stack() (*kernel.Stack, error) {
	s, err := n.c.slot(n.id)
	if err != nil {
		return nil, err
	}
	return s.st, nil
}

// Broadcast atomically broadcasts data from this stack: it will be
// delivered exactly once, in the same total order, on every stack.
//
// Broadcast applies backpressure: when WithMaxOutstanding of this
// stack's own broadcasts are still undelivered, the call blocks until
// the total order catches up, the context is done, or the stack stops.
func (n *Node) Broadcast(ctx context.Context, data []byte) error {
	s, err := n.c.slot(n.id)
	if err != nil {
		return err
	}
	select {
	case s.outstanding <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.st.Done():
		return fmt.Errorf("%w: stack %d", ErrNotRunning, n.id)
	case <-n.c.closed:
		return ErrClosed
	}
	// KindAppPaced marks the message as holding a window slot, so the
	// pump only releases slots for deliveries that acquired one —
	// legacy KindApp broadcasts can never shrink the window.
	s.st.Call(core.Service, core.Broadcast{Data: envelope.Wrap(envelope.KindAppPaced, data)})
	return nil
}

// ChangeProtocol replaces the atomic-broadcast protocol on every stack,
// on the fly, without interrupting service (Algorithm 1). The name is
// validated up front (ErrUnknownProtocol, before anything is
// broadcast); the call then blocks until the replacement completes on
// THIS stack — the moment its seqNumber advances and undelivered
// messages are reissued — and returns the resulting SwitchEvent. Other
// stacks complete at their own position of the total order; wait on
// them with WaitForEpoch, or use Cluster.ChangeProtocolAll.
//
// A request that loses the race against a concurrent change is
// transparently retried in the next epoch, so the returned event may
// carry a later epoch than the one current when the call was made.
func (n *Node) ChangeProtocol(ctx context.Context, protocol string) (SwitchEvent, error) {
	st, err := n.stack()
	if err != nil {
		return SwitchEvent{}, err
	}
	// Name validation happens in the replacement module, before it
	// broadcasts anything; an unknown name replies immediately and is
	// mapped to ErrUnknownProtocol below.
	reply := make(chan core.ChangeReply, 1)
	st.Call(core.Service, core.ChangeProtocol{
		Protocol: protocol,
		Reply:    func(r core.ChangeReply) { reply <- r },
	})
	select {
	case r := <-reply:
		if r.Err != nil {
			if errors.Is(r.Err, core.ErrUnknownProtocol) {
				return SwitchEvent{}, fmt.Errorf("%w: %q", ErrUnknownProtocol, protocol)
			}
			return SwitchEvent{}, r.Err
		}
		return SwitchEvent{
			Stack: n.id, Epoch: r.Ev.Sn, Protocol: r.Ev.Protocol,
			At: r.Ev.At, Reissued: r.Ev.Reissued,
		}, nil
	case <-ctx.Done():
		return SwitchEvent{}, ctx.Err()
	case <-st.Done():
		return SwitchEvent{}, fmt.Errorf("%w: stack %d", ErrNotRunning, n.id)
	case <-n.c.closed:
		return SwitchEvent{}, ErrClosed
	}
}

// WaitForEpoch blocks until this stack's replacement layer has reached
// the given epoch (seqNumber ≥ epoch) and returns its status. It is the
// observer-side switch barrier: a stack that did not initiate a change
// can still wait deterministically for the change to complete locally.
func (n *Node) WaitForEpoch(ctx context.Context, epoch uint64) (Status, error) {
	st, err := n.stack()
	if err != nil {
		return Status{}, err
	}
	reply := make(chan core.Status, 1)
	st.Call(core.Service, core.EpochWaitReq{
		Epoch: epoch,
		Reply: func(s core.Status) { reply <- s },
		Done:  ctx.Done(), // lets the module prune the waiter on ctx expiry
	})
	select {
	case s := <-reply:
		members := make([]int, len(s.Members))
		for i, m := range s.Members {
			members[i] = int(m)
		}
		return Status{
			Epoch: s.Sn, Protocol: s.Protocol, Undelivered: s.Undelivered,
			ViewID: s.ViewID, Members: members,
		}, nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	case <-st.Done():
		return Status{}, fmt.Errorf("%w: stack %d", ErrNotRunning, n.id)
	case <-n.c.closed:
		return Status{}, ErrClosed
	}
}

// Status returns a snapshot of this stack's replacement layer.
func (n *Node) Status(ctx context.Context) (Status, error) {
	return n.WaitForEpoch(ctx, 0)
}

// Join re-admits a member id to the group view, fire-and-forget.
// Requires WithMembership (ErrNoMembership otherwise). The view change
// is totally ordered; it commits as a no-op if the id is already a
// member. To admit a brand-new node with a fresh id and a running
// stack, use Cluster.AddNode.
func (n *Node) Join(member int) error {
	return n.gmCall(member, func(p kernel.Addr) kernel.Request { return gm.Join{P: p} })
}

// Leave removes a member from the group view, fire-and-forget. Requires
// WithMembership (ErrNoMembership otherwise). See Evict for the variant
// that blocks until the view change commits.
func (n *Node) Leave(member int) error {
	return n.gmCall(member, func(p kernel.Addr) kernel.Request { return gm.Leave{P: p} })
}

// Evict removes a member from the group view and blocks until the
// change commits on this stack, returning the installed view. Every
// surviving member installs the identical view at the same point of the
// total order; the evicted member, if alive and locally hosted, is
// halted after publishing the view it was removed in. Requires
// WithMembership (ErrNoMembership otherwise).
func (n *Node) Evict(ctx context.Context, member int) (View, error) {
	st, err := n.stack()
	if err != nil {
		return View{}, err
	}
	if !n.c.membership {
		return View{}, fmt.Errorf("%w: enable it with WithMembership", ErrNoMembership)
	}
	if member < 0 {
		return View{}, fmt.Errorf("%w: member %d", ErrOutOfRange, member)
	}
	reply := make(chan gm.Result, 1)
	st.Call(gm.Service, gm.Leave{
		P:     kernel.Addr(member),
		Reply: func(r gm.Result) { reply <- r },
	})
	select {
	case r := <-reply:
		if r.Err != nil {
			return View{}, r.Err
		}
		return publicView(r.View), nil
	case <-ctx.Done():
		return View{}, ctx.Err()
	case <-st.Done():
		return View{}, fmt.Errorf("%w: stack %d", ErrNotRunning, n.id)
	case <-n.c.closed:
		return View{}, ErrClosed
	}
}

func (n *Node) gmCall(member int, req func(kernel.Addr) kernel.Request) error {
	st, err := n.stack()
	if err != nil {
		return err
	}
	if !n.c.membership {
		return fmt.Errorf("%w: enable it with WithMembership", ErrNoMembership)
	}
	if member < 0 {
		return fmt.Errorf("%w: member %d", ErrOutOfRange, member)
	}
	st.Call(gm.Service, req(kernel.Addr(member)))
	return nil
}

// publicView converts a gm.View into the public View type.
func publicView(v gm.View) View {
	members := make([]int, len(v.Members))
	for i, m := range v.Members {
		members[i] = int(m)
	}
	return View{ID: v.ID, Members: members}
}

// Crash kills this stack abruptly, modelling a machine crash. The
// handle (and every other handle on this stack) fails with
// ErrNotRunning afterwards.
func (n *Node) Crash() error {
	return n.c.Crash(n.id)
}
