package dpu

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LagPolicy selects what happens when a Subscription's consumer falls
// behind its buffer.
type LagPolicy int

const (
	// DropOldest discards the oldest buffered event to make room for
	// the newest and counts the discard (Subscription.Dropped). The
	// stack never blocks; a slow consumer sees the most recent window
	// of events. This is the default.
	DropOldest LagPolicy = iota
	// Block applies backpressure into the stack: the stack's executor
	// waits until the consumer makes room. Nothing is ever dropped, but
	// a stalled consumer stalls the whole stack — including the
	// protocol layers below — so Block is for consumers that must see
	// every event (e.g. state machine replicas) and are known to drain.
	Block
)

// SubscribeOptions selects the event streams and lag behavior of a
// Subscription. Zero-value streams are excluded; an excluded stream's
// accessor returns a channel that is already closed, so ranging over it
// terminates instead of blocking forever.
type SubscribeOptions struct {
	// Deliveries selects the totally-ordered message stream.
	Deliveries bool
	// Switches selects protocol-replacement completion events.
	Switches bool
	// Views selects membership views (requires WithMembership).
	Views bool
	// Advice selects adaptation decisions (requires WithAdaptive;
	// Subscribe fails with ErrNoAdaptive otherwise).
	Advice bool
	// Events selects the unified stream: deliveries, switches, views and
	// advice interleaved into one channel in the order the stack
	// publishes them. Invariant checkers use this — the relative order
	// of a delivery against a switch or view on the same stack is
	// exactly the commit order, which the separate typed streams lose.
	// Advice appears only when the cluster runs WithAdaptive.
	Events bool
	// Buffer is the per-stream channel capacity (default 256).
	Buffer int
	// Policy is the lag policy (default DropOldest).
	Policy LagPolicy
}

// EventKind discriminates the variants of a unified Event.
type EventKind int

const (
	// EventDelivery tags a totally-ordered message delivery.
	EventDelivery EventKind = iota
	// EventSwitch tags a protocol-replacement completion.
	EventSwitch
	// EventView tags a membership-view installation.
	EventView
	// EventAdvice tags an adaptation decision.
	EventAdvice
)

// Event is one entry of the unified stream: Kind selects which field is
// set.
type Event struct {
	Kind     EventKind
	Delivery Delivery
	Switch   SwitchEvent
	View     View
	Advice   Advice
}

// Subscription is one consumer's set of typed event streams from one
// stack. Unlike the legacy fixed channels, each subscription has its
// own buffer and an explicit lag policy, and can be closed
// independently. Streams end (channels close) when the subscription or
// the cluster is closed.
type Subscription struct {
	c    *Cluster
	slot *stackSlot
	opts SubscribeOptions

	deliveries chan Delivery
	switches   chan SwitchEvent
	views      chan View
	advice     chan Advice
	events     chan Event
	dropped    atomic.Uint64

	done      chan struct{}
	closeOnce sync.Once
}

// Subscribe registers a new consumer of this stack's events. The
// subscription observes events from the moment of the call; it does not
// replay history.
func (n *Node) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	slot, err := n.c.slot(n.id)
	if err != nil {
		return nil, err
	}
	if opts.Advice && n.c.engine == nil {
		return nil, fmt.Errorf("%w: enable it with WithAdaptive", ErrNoAdaptive)
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	s := &Subscription{
		c:          n.c,
		slot:       slot,
		opts:       opts,
		deliveries: make(chan Delivery, opts.Buffer),
		switches:   make(chan SwitchEvent, opts.Buffer),
		views:      make(chan View, opts.Buffer),
		advice:     make(chan Advice, opts.Buffer),
		events:     make(chan Event, opts.Buffer),
		done:       make(chan struct{}),
	}
	// Excluded streams are closed up front: ranging over them ends
	// immediately instead of blocking on a channel that never receives.
	if !opts.Deliveries {
		close(s.deliveries)
	}
	if !opts.Switches {
		close(s.switches)
	}
	if !opts.Views {
		close(s.views)
	}
	if !opts.Advice {
		close(s.advice)
	}
	if !opts.Events {
		close(s.events)
	}
	slot.subMu.Lock()
	// Cluster.Close closes c.closed before it snapshots the registries,
	// so a subscription registered after that snapshot would never be
	// closed — refuse instead. Checked under the lock to make the two
	// orderings ("append then snapshot" and "refuse") the only ones.
	select {
	case <-n.c.closed:
		slot.subMu.Unlock()
		return nil, ErrClosed
	default:
	}
	slot.subs = append(slot.subs, s)
	slot.subMu.Unlock()
	return s, nil
}

// Deliveries returns the totally-ordered message stream (closed
// immediately when not selected in SubscribeOptions).
func (s *Subscription) Deliveries() <-chan Delivery { return s.deliveries }

// Switches returns the protocol-replacement event stream (closed
// immediately when not selected in SubscribeOptions).
func (s *Subscription) Switches() <-chan SwitchEvent { return s.switches }

// Views returns the membership-view stream (closed immediately when not
// selected in SubscribeOptions).
func (s *Subscription) Views() <-chan View { return s.views }

// Advice returns the adaptation-decision stream (closed immediately
// when not selected in SubscribeOptions).
func (s *Subscription) Advice() <-chan Advice { return s.advice }

// Events returns the unified interleaved stream (closed immediately
// when not selected in SubscribeOptions).
func (s *Subscription) Events() <-chan Event { return s.events }

// Dropped reports how many events (across all selected streams) the
// DropOldest policy has discarded because the consumer lagged. Always 0
// under Block.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channels. Safe to call
// concurrently with event flow and more than once.
//
// Close must exclude the stack's publisher before closing the
// channels, so while a Block-policy publish to a *sibling*
// subscription on the same stack is parked on its stalled consumer,
// Close (like Subscribe) waits until that publish completes or the
// cluster closes. Closing this subscription's own parked publish never
// waits. This is the same-stack corollary of Block's contract: a
// stalled Block consumer stalls its stack.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() {
		close(s.done) // unblocks a Block-policy publisher mid-send
		s.slot.subMu.Lock()
		list := s.slot.subs
		for i, x := range list {
			if x == s {
				s.slot.subs = append(list[:i], list[i+1:]...)
				break
			}
		}
		s.slot.subMu.Unlock()
		// Publishers run under the slot's RLock, so after the removal
		// above none can still hold this subscription: closing is safe.
		if s.opts.Deliveries {
			close(s.deliveries)
		}
		if s.opts.Switches {
			close(s.switches)
		}
		if s.opts.Views {
			close(s.views)
		}
		if s.opts.Advice {
			close(s.advice)
		}
		if s.opts.Events {
			close(s.events)
		}
	})
}

// lagPush delivers one event to one stream according to the
// subscription's lag policy. It runs on the stack's executor.
func lagPush[T any](s *Subscription, ch chan T, v T) {
	if s.opts.Policy == Block {
		select {
		case ch <- v:
		case <-s.done:
		case <-s.c.closed:
		}
		return
	}
	for {
		select {
		case ch <- v:
			return
		default:
		}
		select {
		case <-ch:
			s.dropped.Add(1)
		default:
		}
	}
}

func (slot *stackSlot) publishDelivery(c *Cluster, d Delivery) {
	slot.subMu.RLock()
	defer slot.subMu.RUnlock()
	for _, s := range slot.subs {
		if s.opts.Deliveries {
			lagPush(s, s.deliveries, d)
		}
		if s.opts.Events {
			lagPush(s, s.events, Event{Kind: EventDelivery, Delivery: d})
		}
	}
}

func (slot *stackSlot) publishSwitch(c *Cluster, ev SwitchEvent) {
	slot.subMu.RLock()
	defer slot.subMu.RUnlock()
	for _, s := range slot.subs {
		if s.opts.Switches {
			lagPush(s, s.switches, ev)
		}
		if s.opts.Events {
			lagPush(s, s.events, Event{Kind: EventSwitch, Switch: ev})
		}
	}
}

func (slot *stackSlot) publishView(c *Cluster, v View) {
	slot.subMu.RLock()
	defer slot.subMu.RUnlock()
	for _, s := range slot.subs {
		if s.opts.Views {
			lagPush(s, s.views, v)
		}
		if s.opts.Events {
			lagPush(s, s.events, Event{Kind: EventView, View: v})
		}
	}
}

// publishAdvice runs on the adaptation engine's goroutine (not the
// stack executor); lagPush's policies hold regardless — a Block-policy
// consumer backpressures the engine instead of the stack.
func (slot *stackSlot) publishAdvice(c *Cluster, a Advice) {
	slot.subMu.RLock()
	defer slot.subMu.RUnlock()
	for _, s := range slot.subs {
		if s.opts.Advice {
			lagPush(s, s.advice, a)
		}
		if s.opts.Events {
			lagPush(s, s.events, Event{Kind: EventAdvice, Advice: a})
		}
	}
}
