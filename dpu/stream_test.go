package dpu_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/dpu"
	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

// tcpBook reserves n loopback TCP ports and returns a transport
// address book over them.
func tcpBook(t *testing.T, n int) map[transport.Addr]string {
	t.Helper()
	book := make(map[transport.Addr]string, n)
	for i, a := range transporttest.ReserveStreamAddrs(t, n) {
		book[transport.Addr(i)] = a
	}
	return book
}

// TestClusterOverTCP runs the full stack over the stream backend:
// broadcasts before, during and after a live ChangeProtocol must come
// out exactly once, in the same total order, on every stack — the same
// contract the UDP e2e test enforces, now over connections instead of
// datagrams.
func TestClusterOverTCP(t *testing.T) {
	const n, msgs = 3, 40
	tr, err := transport.NewTCP(transport.TCPConfig{Book: tcpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(n, dpu.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	from := 0
	send := func(count int) {
		for i := 0; i < count; i++ {
			if err := c.Broadcast(from, []byte(fmt.Sprintf("t-%d-%d", from, i))); err != nil {
				t.Fatal(err)
			}
			from = (from + 1) % n
		}
	}
	send(msgs / 2)
	if err := c.ChangeProtocol(1, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}
	send(msgs - msgs/2)

	sequences := make([][]string, n)
	for i := 0; i < n; i++ {
		for _, d := range drain(t, c, i, msgs) {
			sequences[i] = append(sequences[i], fmt.Sprintf("%d:%s", d.Origin, d.Data))
		}
	}
	for i := 1; i < n; i++ {
		if len(sequences[i]) != len(sequences[0]) {
			t.Fatalf("stack %d delivered %d, stack 0 delivered %d", i, len(sequences[i]), len(sequences[0]))
		}
		for k := range sequences[0] {
			if sequences[i][k] != sequences[0][k] {
				t.Fatalf("order divergence at %d: stack0=%s stack%d=%s", k, sequences[0][k], i, sequences[i][k])
			}
		}
	}
}

// TestClusterTCPLargePayload is the acceptance test for stream
// fragmentation: a payload three times past the UDP datagram ceiling
// (65507 bytes) must round-trip through Broadcast intact on every
// stack. Over the datagram backend this message cannot exist; over the
// stream backend it is fragmented, carried, and reassembled below the
// protocol layer.
func TestClusterTCPLargePayload(t *testing.T) {
	const n = 3
	payload := make([]byte, 3*transport.MaxDatagram) // ~192 KiB
	for i := range payload {
		payload[i] = byte(i*31 + i>>9)
	}

	tr, err := transport.NewTCP(transport.TCPConfig{Book: tcpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(n, dpu.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A small preamble plus the oversized message plus a small coda, all
	// from one origin: per-source FIFO means fragmentation must not
	// disturb the ordering around the big message.
	if err := c.Broadcast(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := c.Broadcast(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Broadcast(1, []byte("after")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		got := drain(t, c, i, 3)
		if string(got[0].Data) != "before" || string(got[2].Data) != "after" {
			t.Fatalf("stack %d framing messages out of order (lengths %d, %d, %d)",
				i, len(got[0].Data), len(got[1].Data), len(got[2].Data))
		}
		if got[1].Origin != 1 {
			t.Fatalf("stack %d large payload attributed to %d", i, got[1].Origin)
		}
		if !bytes.Equal(got[1].Data, payload) {
			t.Fatalf("stack %d large payload corrupted: %d bytes, want %d", i, len(got[1].Data), len(payload))
		}
	}
	if st := tr.Stats(); st.Fragments == 0 {
		t.Fatalf("large payload delivered without fragmentation: %+v", st)
	}
}

// TestLinkFaultsOverTransport exercises the PartitionLink/HealLink
// fallback path: without the built-in simulated network the cut must
// land on the fault injector (both one-way directions) instead of
// returning ErrUnsupported — and must still reject when no injector
// surface exists at all.
func TestLinkFaultsOverTransport(t *testing.T) {
	const n = 3
	tr, err := transport.NewTCP(transport.TCPConfig{Book: tcpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(n, dpu.WithTransport(tr), dpu.WithFaults())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.PartitionLink(0, 1); err != nil {
		t.Fatalf("PartitionLink over injector: %v", err)
	}
	if err := c.HealLink(0, 1); err != nil {
		t.Fatalf("HealLink over injector: %v", err)
	}
	if err := c.PartitionLink(-1, 1); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Fatalf("PartitionLink(-1,1) = %v, want ErrOutOfRange", err)
	}

	// The healed cluster must still make progress end to end.
	if err := c.Broadcast(0, []byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := drain(t, c, i, 1)
		if string(got[0].Data) != "post-heal" {
			t.Fatalf("stack %d delivered %q after heal", i, got[0].Data)
		}
	}
}
