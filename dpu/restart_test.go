package dpu_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/dpu"
	"repro/internal/metrics"
)

// TestRestartRevivesCrashedSlot is the crash–restart acceptance path:
// a member crashes, is evicted, and Restart revives its process as a
// fresh member under a new id — never the old one — that delivers the
// same totally-ordered suffix as the survivors.
func TestRestartRevivesCrashedSlot(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(17), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	nodes := make(map[int]*dpu.Node)
	cols := make(map[int]*collector)
	for i := 0; i < 3; i++ {
		n, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		cols[i] = collectOn(t, n)
	}

	// A running slot cannot be restarted.
	if _, err := c.Restart(ctx, 2); !errors.Is(err, dpu.ErrStillRunning) {
		t.Fatalf("Restart of a running stack: %v, want ErrStillRunning", err)
	}
	if _, err := c.Restart(ctx, 99); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Fatalf("Restart out of range: %v, want ErrOutOfRange", err)
	}

	crashed := nodes[2]
	if err := crashed.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Evict(ctx, 2); err != nil {
		t.Fatal(err)
	}

	before := metrics.Counters()["membership.restarts"]
	// Restart through the dead handle: the one Node call valid on it.
	revived, err := crashed.Restart(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if revived.Index() == 2 {
		t.Fatal("restarted member reused the crashed id")
	}
	if revived.Index() != 3 {
		t.Fatalf("restarted member id %d, want 3 (next deterministic id)", revived.Index())
	}
	if got := metrics.Counters()["membership.restarts"]; got != before+1 {
		t.Fatalf("membership.restarts = %d, want %d", got, before+1)
	}
	// The revived slot is running again; the old one stays retired.
	if _, err := c.Node(2); !errors.Is(err, dpu.ErrNotRunning) {
		t.Fatalf("old slot: %v, want ErrNotRunning", err)
	}

	rcol := collectOn(t, revived)
	live := map[int]*collector{0: cols[0], 1: cols[1], 3: rcol}
	if err := nodes[0].Broadcast(ctx, []byte("anchor")); err != nil {
		t.Fatal(err)
	}
	waitForMarker(t, live, "0:anchor")
	const post = 12
	for k := 0; k < post; k++ {
		sender := nodes[k%2]
		if k%3 == 2 {
			sender = revived
		}
		if err := sender.Broadcast(ctx, []byte(fmt.Sprintf("post-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitSuffixAgreement(t, live, "0:anchor", post+1)

	st, err := revived.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 3 {
		t.Fatalf("view after restart %v, want 3 members", st.Members)
	}
	for _, m := range st.Members {
		if m == 2 {
			t.Fatalf("view %v still lists the crashed incarnation", st.Members)
		}
	}
}

// TestRestartWithoutEvict revives a crashed member while its dead
// incarnation still sits in the view: the join orders through the live
// majority and the group keeps agreeing.
func TestRestartWithoutEvict(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(23), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := c.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	revived, err := c.Restart(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	cols := map[int]*collector{0: collectOn(t, n0), 1: collectOn(t, n1), 3: collectOn(t, revived)}
	if err := n1.Broadcast(ctx, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	waitSuffixAgreement(t, cols, "1:alive", 1)

	st, err := revived.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 4 {
		t.Fatalf("view %v, want 4 members (dead id 2 still listed)", st.Members)
	}
}
