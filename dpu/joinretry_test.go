package dpu_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

func joinRetries() uint64 { return metrics.Counters()["membership.join_retries"] }

// reserveTCP returns a TCP address that is currently not listening but
// can be bound later.
func reserveTCP(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestJoinRetrySponsorComesUp is the restart-rides-out-a-dead-sponsor
// path: Join starts while nothing listens at the sponsor address
// (connection refused), retries under WithJoinRetry, and succeeds once
// the sponsor's ServeJoin comes up.
func TestJoinRetrySponsorComesUp(t *testing.T) {
	sponsorAddr := reserveTCP(t)
	book := udpBook(t, 3)
	endpoints := make(map[int]string, 3)
	for a, ep := range book {
		endpoints[int(a)] = ep
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(3, dpu.WithTransport(tr), dpu.WithMembership(), dpu.WithEndpoints(endpoints))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := joinRetries()
	joinEP := transporttest.ReserveAddrs(t, 1)[0]
	type result struct {
		c   *dpu.Cluster
		n   *dpu.Node
		err error
	}
	done := make(chan result, 1)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	go func() {
		jc, jn, err := dpu.Join(ctx, sponsorAddr, joinEP,
			dpu.WithJoinRetry(200, 10*time.Millisecond, 40*time.Millisecond),
			dpu.WithJoinTimeout(5*time.Second))
		done <- result{jc, jn, err}
	}()

	// Hold the sponsor down until Join has demonstrably failed at least
	// once, then bring ServeJoin up at the reserved address.
	deadline := time.Now().Add(timeout)
	for joinRetries() == before {
		if time.Now().After(deadline) {
			t.Fatal("Join never retried against the dead sponsor")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", sponsorAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ServeJoin(ln); err != nil {
		t.Fatal(err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("Join failed despite retries: %v", r.err)
	}
	defer r.c.Close()
	if r.n.Index() != 3 {
		t.Fatalf("joiner id %d, want 3", r.n.Index())
	}
	if got := joinRetries(); got <= before {
		t.Fatalf("join_retries = %d, want > %d", got, before)
	}
	// The admitted member is live: it sees the 4-member view.
	st, err := r.n.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 4 {
		t.Fatalf("joiner view %v, want 4 members", st.Members)
	}
}

// TestJoinRetrySponsorDiesMidHandshake exhausts the retry budget
// against a sponsor that accepts the TCP connection and drops it
// before answering: every attempt is transport-level and retried, and
// the final error surfaces the handshake failure.
func TestJoinRetrySponsorDiesMidHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close() // dies mid-handshake, every time
		}
	}()

	before := joinRetries()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, _, err = dpu.Join(ctx, ln.Addr().String(), "127.0.0.1:0",
		dpu.WithJoinRetry(3, 5*time.Millisecond, 10*time.Millisecond))
	if err == nil {
		t.Fatal("Join succeeded against a sponsor that always hangs up")
	}
	if !strings.Contains(err.Error(), "join handshake") {
		t.Fatalf("error %v, want a handshake failure", err)
	}
	if got := joinRetries(); got != before+2 {
		t.Fatalf("join_retries grew by %d, want 2 (3 attempts)", got-before)
	}
}

// TestJoinRefusalNotRetried: a sponsor that answers with a logical
// refusal is final — no retry, however large the budget.
func TestJoinRefusalNotRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var req map[string]any
				json.NewDecoder(conn).Decode(&req)
				json.NewEncoder(conn).Encode(map[string]string{"error": "membership module not enabled"})
			}(conn)
		}
	}()

	before := joinRetries()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, _, err = dpu.Join(ctx, ln.Addr().String(), "127.0.0.1:0",
		dpu.WithJoinRetry(100, time.Millisecond, time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "join refused") {
		t.Fatalf("error %v, want a join refusal", err)
	}
	if got := joinRetries(); got != before {
		t.Fatalf("a refusal was retried %d times", got-before)
	}
}

// TestJoinCtxCancelDuringBackoff aborts a Join parked in its backoff
// wait: cancellation must cut the wait short instead of letting the
// full capped-exponential delay elapse.
func TestJoinCtxCancelDuringBackoff(t *testing.T) {
	sponsorAddr := reserveTCP(t) // nothing ever listens here
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		// The first backoff is at least base/2 = 30s: without the cancel
		// the Join would sit in the wait far beyond this test's patience.
		_, _, err := dpu.Join(ctx, sponsorAddr, "127.0.0.1:0",
			dpu.WithJoinRetry(10, time.Minute, time.Minute))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("Join took %v to honor the cancellation", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Join ignored the ctx cancellation during backoff")
	}
}
