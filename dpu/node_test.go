package dpu_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/transport"
)

func TestNodeHandleValidation(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Node(-1); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Errorf("Node(-1) = %v, want ErrOutOfRange", err)
	}
	if _, err := c.Node(3); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Errorf("Node(3) = %v, want ErrOutOfRange", err)
	}
	n, err := c.Node(2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Index() != 2 {
		t.Errorf("Index = %d", n.Index())
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	// An existing handle re-validates on use.
	if err := n.Broadcast(context.Background(), []byte("x")); !errors.Is(err, dpu.ErrNotRunning) {
		t.Errorf("Broadcast on crashed stack = %v, want ErrNotRunning", err)
	}
	if _, err := c.Node(2); !errors.Is(err, dpu.ErrNotRunning) {
		t.Errorf("Node(crashed) = %v, want ErrNotRunning", err)
	}
}

func TestNodeRemoteStack(t *testing.T) {
	tr, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(3, dpu.WithTransport(tr), dpu.WithLocalStacks(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Node(0); !errors.Is(err, dpu.ErrRemoteStack) {
		t.Errorf("Node(remote) = %v, want ErrRemoteStack", err)
	}
	if _, err := c.Node(1); err != nil {
		t.Errorf("Node(local) = %v", err)
	}
}

func TestNodeChangeProtocolReturnsCompletedEvent(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n1, err := c.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := n1.ChangeProtocol(ctx, dpu.ProtocolSequencer)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stack != 1 || ev.Epoch != 1 || ev.Protocol != dpu.ProtocolSequencer {
		t.Errorf("event = %+v", ev)
	}
	st, err := n1.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Protocol != dpu.ProtocolSequencer {
		t.Errorf("status after switch = %+v", st)
	}
	// A second switch advances the epoch again.
	ev2, err := n1.ChangeProtocol(ctx, dpu.ProtocolToken)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Epoch != 2 || ev2.Protocol != dpu.ProtocolToken {
		t.Errorf("second event = %+v", ev2)
	}
}

func TestNodeChangeProtocolUnknownNameImmediate(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if _, err := n0.ChangeProtocol(ctx, "abcast/nope"); !errors.Is(err, dpu.ErrUnknownProtocol) {
		t.Fatalf("ChangeProtocol(unknown) = %v, want ErrUnknownProtocol", err)
	}
	// The legacy entry point validates too instead of vanishing into the
	// stack.
	if err := c.ChangeProtocol(0, "abcast/nope"); !errors.Is(err, dpu.ErrUnknownProtocol) {
		t.Fatalf("legacy ChangeProtocol(unknown) = %v, want ErrUnknownProtocol", err)
	}
	// Nothing happened: the epoch is untouched and the layer works.
	st, err := n0.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 {
		t.Errorf("epoch advanced on unknown protocol: %+v", st)
	}
}

func TestNodeChangeProtocolHonorsContext(t *testing.T) {
	// One local stack of a three-stack group whose peers are dead
	// reserved ports: the change can never complete, so the call must
	// come back on ctx expiry rather than hang.
	tr, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(3, dpu.WithTransport(tr), dpu.WithLocalStacks(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := n0.ChangeProtocol(ctx, dpu.ProtocolSequencer); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ChangeProtocol on a stalled group = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("ctx expiry did not unblock promptly")
	}
}

func TestNodeBroadcastBackpressure(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(24), dpu.WithMaxOutstanding(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Kill the majority: consensus stalls, so broadcasts can never be
	// delivered back and the outstanding window never drains.
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	// Two slots: the first two sends are admitted immediately.
	if err := n0.Broadcast(ctx, []byte("a")); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if err := n0.Broadcast(ctx, []byte("b")); err != nil {
		t.Fatalf("second send: %v", err)
	}
	// The third must block on the full window until the context expires.
	if err := n0.Broadcast(ctx, []byte("c")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third send = %v, want DeadlineExceeded", err)
	}
}

func TestNodeBroadcastWindowDrains(t *testing.T) {
	// With a healthy group the tiny window recycles: many more sends
	// than the window size all go through.
	c, err := dpu.New(3, dpu.WithSeed(25), dpu.WithMaxOutstanding(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	const k = 20
	for i := 0; i < k; i++ {
		if err := n0.Broadcast(ctx, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	drain(t, c, 1, k)
}

func TestWaitForEpochBarrier(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(26))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := n0.ChangeProtocol(ctx, dpu.ProtocolToken)
	if err != nil {
		t.Fatal(err)
	}
	// Every stack reaches the epoch; an already-reached epoch returns
	// immediately.
	for i := 0; i < 3; i++ {
		st, err := c.WaitForEpoch(ctx, i, ev.Epoch)
		if err != nil {
			t.Fatalf("stack %d: %v", i, err)
		}
		if st.Epoch < ev.Epoch || st.Protocol != dpu.ProtocolToken {
			t.Errorf("stack %d status = %+v", i, st)
		}
	}
	// A future epoch times out with the context.
	short, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, err := c.WaitForEpoch(short, 0, ev.Epoch+5); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("future epoch wait = %v, want DeadlineExceeded", err)
	}
}

func TestChangeProtocolAll(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(27))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ev, err := c.ChangeProtocolAll(ctx, dpu.ProtocolSequencer)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Epoch != 1 || ev.Protocol != dpu.ProtocolSequencer {
		t.Errorf("event = %+v", ev)
	}
	// Returns only after every local stack completed: statuses agree
	// without any extra waiting.
	for i := 0; i < 3; i++ {
		st, err := c.Status(i)
		if err != nil {
			t.Fatal(err)
		}
		if st.Epoch != 1 || st.Protocol != dpu.ProtocolSequencer {
			t.Errorf("stack %d status = %+v", i, st)
		}
	}
	if _, err := c.ChangeProtocolAll(ctx, "abcast/nope"); !errors.Is(err, dpu.ErrUnknownProtocol) {
		t.Errorf("ChangeProtocolAll(unknown) = %v, want ErrUnknownProtocol", err)
	}
}

func TestLinkFaultAPI(t *testing.T) {
	// Simulated network: link faults work and bounds are checked.
	c, err := dpu.New(3, dpu.WithSeed(28))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PartitionLink(0, 2); err != nil {
		t.Errorf("PartitionLink over simnet: %v", err)
	}
	if err := c.HealLink(0, 2); err != nil {
		t.Errorf("HealLink over simnet: %v", err)
	}
	if err := c.PartitionLink(0, 9); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Errorf("PartitionLink(0,9) = %v, want ErrOutOfRange", err)
	}

	// External transport: ErrUnsupported instead of a silent no-op.
	tr, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	cu, err := dpu.New(2, dpu.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	if err := cu.PartitionLink(0, 1); !errors.Is(err, dpu.ErrUnsupported) {
		t.Errorf("PartitionLink over transport = %v, want ErrUnsupported", err)
	}
	if err := cu.HealLink(0, 1); !errors.Is(err, dpu.ErrUnsupported) {
		t.Errorf("HealLink over transport = %v, want ErrUnsupported", err)
	}
	// The deprecated methods stay silent no-ops (logged once).
	cu.Partition(0, 1)
	cu.Heal(0, 1)
}

func TestLegacyAccessorsBoundsChecked(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Out-of-range indexes must not panic.
	if ch := c.Deliveries(-1); ch != nil {
		t.Error("Deliveries(-1) != nil")
	}
	if ch := c.Switches(99); ch != nil {
		t.Error("Switches(99) != nil")
	}
	if ch := c.Views(99); ch != nil {
		t.Error("Views(99) != nil")
	}
	if d := c.Dropped(99); d != 0 {
		t.Errorf("Dropped(99) = %d", d)
	}
	if st := c.Stack(-5); st != nil {
		t.Error("Stack(-5) != nil")
	}
	if err := c.Crash(99); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Errorf("Crash(99) = %v, want ErrOutOfRange", err)
	}
}

func TestNodeMembershipRequiresOption(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(30))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n0.Join(1); !errors.Is(err, dpu.ErrNoMembership) {
		t.Errorf("Join without WithMembership = %v, want ErrNoMembership", err)
	}
	if err := n0.Leave(1); !errors.Is(err, dpu.ErrNoMembership) {
		t.Errorf("Leave without WithMembership = %v, want ErrNoMembership", err)
	}
	ctx := context.Background()
	if _, err := n0.Evict(ctx, 1); !errors.Is(err, dpu.ErrNoMembership) {
		t.Errorf("Evict without WithMembership = %v, want ErrNoMembership", err)
	}
	if _, err := c.AddNode(ctx, ""); !errors.Is(err, dpu.ErrNoMembership) {
		t.Errorf("AddNode without WithMembership = %v, want ErrNoMembership", err)
	}
}

func TestNodeCallsAfterClose(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	ctx := context.Background()
	if err := n0.Broadcast(ctx, []byte("x")); !errors.Is(err, dpu.ErrNotRunning) {
		t.Errorf("Broadcast after Close = %v, want ErrNotRunning", err)
	}
	if _, err := n0.ChangeProtocol(ctx, dpu.ProtocolSequencer); !errors.Is(err, dpu.ErrNotRunning) {
		t.Errorf("ChangeProtocol after Close = %v, want ErrNotRunning", err)
	}
}
