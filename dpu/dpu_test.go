package dpu_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/consensus"
)

const timeout = 30 * time.Second

// drain collects k deliveries from a stack's channel.
func drain(t *testing.T, c *dpu.Cluster, stack, k int) []dpu.Delivery {
	t.Helper()
	out := make([]dpu.Delivery, 0, k)
	deadline := time.After(timeout)
	for len(out) < k {
		select {
		case d, ok := <-c.Deliveries(stack):
			if !ok {
				t.Fatalf("stack %d: delivery channel closed after %d of %d", stack, len(out), k)
			}
			out = append(out, d)
		case <-deadline:
			t.Fatalf("stack %d: timed out after %d of %d deliveries", stack, len(out), k)
		}
	}
	return out
}

func waitSwitch(t *testing.T, c *dpu.Cluster, stack int) dpu.SwitchEvent {
	t.Helper()
	select {
	case ev := <-c.Switches(stack):
		return ev
	case <-time.After(timeout):
		t.Fatalf("stack %d: no switch event", stack)
		return dpu.SwitchEvent{}
	}
}

func TestQuickstartFlow(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.N() != 3 {
		t.Fatalf("N = %d", c.N())
	}
	if err := c.Broadcast(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ds := drain(t, c, i, 1)
		if ds[0].Origin != 0 || string(ds[0].Data) != "hello" {
			t.Errorf("stack %d got %+v", i, ds[0])
		}
	}
}

func TestTotalOrderAcrossLiveSwitch(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const pre, post = 20, 20
	for k := 0; k < pre; k++ {
		c.Broadcast(k%3, []byte(fmt.Sprintf("pre-%d", k)))
	}
	if err := c.ChangeProtocol(1, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < post; k++ {
		c.Broadcast(k%3, []byte(fmt.Sprintf("post-%d", k)))
	}
	var ref []string
	for i := 0; i < 3; i++ {
		ds := drain(t, c, i, pre+post)
		seq := make([]string, len(ds))
		for k, d := range ds {
			seq[k] = fmt.Sprintf("%d:%s", d.Origin, d.Data)
		}
		if ref == nil {
			ref = seq
			continue
		}
		for k := range ref {
			if seq[k] != ref[k] {
				t.Fatalf("stack %d diverges at %d: %q vs %q", i, k, seq[k], ref[k])
			}
		}
	}
	for i := 0; i < 3; i++ {
		ev := waitSwitch(t, c, i)
		if ev.Protocol != dpu.ProtocolSequencer || ev.Epoch != 1 {
			t.Errorf("stack %d switch event %+v", i, ev)
		}
		st, err := c.Status(i)
		if err != nil {
			t.Fatal(err)
		}
		if st.Protocol != dpu.ProtocolSequencer {
			t.Errorf("stack %d status %+v", i, st)
		}
	}
}

func TestInitialProtocolOption(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(3), dpu.WithInitialProtocol(dpu.ProtocolToken))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Status(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol != dpu.ProtocolToken || st.Epoch != 0 {
		t.Errorf("status = %+v", st)
	}
	c.Broadcast(2, []byte("tok"))
	drain(t, c, 0, 1)
}

func TestMembershipViewsAcrossSwitch(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(4), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// A membership change, then a protocol switch, then another change:
	// GM must keep working, unaware of the replacement — and since views
	// now drive the stack, the evicted member halts and a NEW node joins
	// at runtime instead of a stale id resurrecting.
	if err := c.Leave(0, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case v := <-c.Views(i):
			if v.ID != 1 || len(v.Members) != 2 {
				t.Errorf("stack %d view %+v", i, v)
			}
		case <-time.After(timeout):
			t.Fatalf("stack %d: no view", i)
		}
	}
	// The evicted stack halts once it publishes the view it was removed
	// in; its handle reports ErrNotRunning.
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.Node(2); errors.Is(err, dpu.ErrNotRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted stack 2 still accepts operations")
		}
		time.Sleep(time.Millisecond)
	}
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if _, err := c.ChangeProtocolAll(sctx, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}
	node, err := c.AddNode(sctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if node.Index() != 3 {
		t.Errorf("assigned member id %d, want 3", node.Index())
	}
	for _, i := range []int{0, 1} {
		select {
		case v := <-c.Views(i):
			if v.ID != 2 || len(v.Members) != 3 {
				t.Errorf("stack %d view after switch %+v", i, v)
			}
		case <-time.After(timeout):
			t.Fatalf("stack %d: no view after switch", i)
		}
	}
	st, err := node.Status(sctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol != dpu.ProtocolSequencer || st.ViewID != 2 || len(st.Members) != 3 {
		t.Errorf("joiner status %+v", st)
	}
}

func TestCrashMinorityServiceContinues(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Broadcast(0, []byte("before"))
	drain(t, c, 0, 1)
	drain(t, c, 1, 1)
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	c.Broadcast(0, []byte("after"))
	for _, i := range []int{0, 1} {
		ds := drain(t, c, i, 1)
		if string(ds[0].Data) != "after" {
			t.Errorf("stack %d got %q", i, ds[0].Data)
		}
	}
	if err := c.Broadcast(2, nil); err == nil {
		t.Error("Broadcast on crashed stack succeeded")
	}
}

func TestPartitionHealsAndTrafficResumes(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Partition(0, 2)
	c.Broadcast(1, []byte("through-partition"))
	// 0 and 1 and 2 can still all reach each other via majority paths
	// (rbcast relays through 1), so this must deliver everywhere.
	for i := 0; i < 3; i++ {
		drain(t, c, i, 1)
	}
	c.Heal(0, 2)
	c.Broadcast(0, []byte("after-heal"))
	for i := 0; i < 3; i++ {
		drain(t, c, i, 1)
	}
}

func TestConsensusVariantSwitch(t *testing.T) {
	// The consensus-replacement extension: switch to a CT variant that
	// runs on a separate consensus protocol with a fixed-leaning
	// coordinator. create_module recursion builds the new consensus
	// module as a required service.
	c, err := dpu.New(3, dpu.WithSeed(7),
		dpu.WithConsensusVariant("abcast/ct-fixed", consensus.Fixed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Broadcast(0, []byte("on-rotating"))
	for i := 0; i < 3; i++ {
		drain(t, c, i, 1)
	}
	if err := c.ChangeProtocol(0, "abcast/ct-fixed"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := waitSwitch(t, c, i)
		if ev.Protocol != "abcast/ct-fixed" {
			t.Errorf("stack %d switched to %q", i, ev.Protocol)
		}
	}
	c.Broadcast(1, []byte("on-fixed"))
	for i := 0; i < 3; i++ {
		ds := drain(t, c, i, 1)
		if string(ds[0].Data) != "on-fixed" {
			t.Errorf("stack %d got %q", i, ds[0].Data)
		}
	}
}

func TestChangeToUnknownProtocolIsIgnoredButHarmless(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ChangeProtocol(0, "abcast/not-registered")
	c.Broadcast(0, []byte("still-works"))
	for i := 0; i < 3; i++ {
		ds := drain(t, c, i, 1)
		if string(ds[0].Data) != "still-works" {
			t.Errorf("stack %d got %q", i, ds[0].Data)
		}
	}
	st, _ := c.Status(0)
	if st.Epoch != 0 {
		t.Errorf("epoch advanced on unknown protocol: %+v", st)
	}
}

func TestLargePayloadRoundtrip(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte{0xAB}, 32*1024)
	c.Broadcast(1, payload)
	ds := drain(t, c, 0, 1)
	if !bytes.Equal(ds[0].Data, payload) {
		t.Error("payload corrupted")
	}
}

func TestInvalidArguments(t *testing.T) {
	if _, err := dpu.New(0); err == nil {
		t.Error("New(0) succeeded")
	}
	c, err := dpu.New(2, dpu.WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(5, nil); err == nil {
		t.Error("Broadcast(out-of-range) succeeded")
	}
	if err := c.ChangeProtocol(-1, dpu.ProtocolCT); err == nil {
		t.Error("ChangeProtocol(-1) succeeded")
	}
	if _, err := c.Status(99); err == nil {
		t.Error("Status(99) succeeded")
	}
}

func TestProtocolsList(t *testing.T) {
	ps := dpu.Protocols()
	if len(ps) != 3 {
		t.Fatalf("Protocols = %v", ps)
	}
}

func TestCloseIsIdempotentAndClosesChannels(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	if _, ok := <-c.Deliveries(0); ok {
		t.Error("delivery channel not closed")
	}
}
