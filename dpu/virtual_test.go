package dpu

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestVirtualClockCluster runs a whole cluster under discrete-event
// virtual time: broadcasts complete, total order holds, and no wall
// time is waited on.
func TestVirtualClockCluster(t *testing.T) {
	vc := vclock.NewVirtual()
	c, err := New(3, WithSeed(7), WithClock(vc), WithInitialProtocol(ProtocolSequencer))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	subs := make([]*Subscription, 3)
	for i := range subs {
		n, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		subs[i], err = n.Subscribe(SubscribeOptions{Events: true, Buffer: 4096, Policy: Block})
		if err != nil {
			t.Fatal(err)
		}
	}

	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%3, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	vc.RunFor(2 * time.Second)

	c.Close()
	for stack, sub := range subs {
		var got []string
		for ev := range sub.Events() {
			if ev.Kind == EventDelivery {
				got = append(got, string(ev.Delivery.Data))
			}
		}
		if len(got) != msgs {
			t.Fatalf("stack %d delivered %d messages, want %d", stack, len(got), msgs)
		}
	}
}

// TestVirtualClockDeterminism runs the same seeded virtual cluster
// twice and requires the identical delivery order.
func TestVirtualClockDeterminism(t *testing.T) {
	run := func() []string {
		vc := vclock.NewVirtual()
		c, err := New(3, WithSeed(42), WithClock(vc),
			WithLoss(0.05)) // loss makes the RNG stream load-bearing
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		n0, err := c.Node(0)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := n0.Subscribe(SubscribeOptions{Events: true, Buffer: 4096, Policy: Block})
		if err != nil {
			t.Fatal(err)
		}
		// Inject broadcasts as clock events: the virtual clock serializes
		// them, so the shared fault RNG is consumed in a fixed order. (A
		// direct Broadcast from the test goroutine would wake three
		// executors concurrently and lose determinism.)
		for i := 0; i < 30; i++ {
			i := i
			vc.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				c.Broadcast(i%3, []byte(fmt.Sprintf("m%d", i))) //nolint:errcheck
			})
		}
		vc.RunFor(3 * time.Second)
		c.Close()
		var got []string
		for ev := range sub.Events() {
			if ev.Kind == EventDelivery {
				got = append(got, fmt.Sprintf("%d:%s@%s", ev.Delivery.Origin, ev.Delivery.Data, ev.Delivery.At))
			}
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at delivery %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) != 30 {
		t.Fatalf("delivered %d, want 30", len(a))
	}
}
