package dpu_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/dpu"
)

// TestBatchingDeliversAllInOrder smoke-checks the batching fast path:
// a burst from every stack arrives exactly once, in the same total
// order, on every stack.
func TestBatchingDeliversAllInOrder(t *testing.T) {
	const n, per = 3, 200
	c, err := dpu.New(n, dpu.WithSeed(11),
		dpu.WithBatching(200*time.Microsecond, 8<<10),
		dpu.WithDeliveryBuffer(n*per+64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for i := 0; i < n; i++ {
		node, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < per; s++ {
			if err := node.Broadcast(ctx, payloadFor(i, s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertExactlyOnceTotalOrder(t, c, n, n*per)
}

// TestBatchingAcrossProtocolSwitch is the batching x switch scenario:
// ChangeProtocolAll fires in the middle of a concurrent burst with
// batching enabled, so batches are caught undelivered at the epoch
// boundary and must be reissued exactly once through the new protocol.
// Asserts no loss, no duplication and a single total order spanning
// both epochs, on every stack.
func TestBatchingAcrossProtocolSwitch(t *testing.T) {
	const n, per = 3, 300
	c, err := dpu.New(n, dpu.WithSeed(12), dpu.WithInitialProtocol(dpu.ProtocolCT),
		dpu.WithBatching(150*time.Microsecond, 4<<10),
		dpu.WithDeliveryBuffer(n*per+64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Producers stream from every stack while the switch happens.
	var wg sync.WaitGroup
	errs := make(chan error, n)
	release := make(chan struct{}) // producers start; switch fires mid-stream
	for i := 0; i < n; i++ {
		node, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, node *dpu.Node) {
			defer wg.Done()
			<-release
			for s := 0; s < per; s++ {
				if err := node.Broadcast(ctx, payloadFor(i, s)); err != nil {
					errs <- fmt.Errorf("stack %d msg %d: %w", i, s, err)
					return
				}
			}
		}(i, node)
	}
	close(release)
	// Let the burst get going, then switch protocols under it — twice,
	// so batches straddle two epoch boundaries.
	time.Sleep(2 * time.Millisecond)
	if _, err := c.ChangeProtocolAll(ctx, dpu.ProtocolSequencer); err != nil {
		t.Fatalf("switch to sequencer: %v", err)
	}
	if _, err := c.ChangeProtocolAll(ctx, dpu.ProtocolCT); err != nil {
		t.Fatalf("switch back to ct: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	assertExactlyOnceTotalOrder(t, c, n, n*per)
}

func payloadFor(stack, seq int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, uint32(stack))
	binary.BigEndian.PutUint32(b[4:], uint32(seq))
	return b
}

// assertExactlyOnceTotalOrder drains total deliveries from every stack
// and checks exactly-once per stack plus an identical delivery order
// across stacks.
func assertExactlyOnceTotalOrder(t *testing.T, c *dpu.Cluster, n, total int) {
	t.Helper()
	orders := make([][]string, n)
	for i := 0; i < n; i++ {
		seen := make(map[string]bool, total)
		for _, d := range drain(t, c, i, total) {
			if len(d.Data) != 8 {
				t.Fatalf("stack %d: malformed payload %x", i, d.Data)
			}
			key := fmt.Sprintf("%d/%d", binary.BigEndian.Uint32(d.Data), binary.BigEndian.Uint32(d.Data[4:]))
			if seen[key] {
				t.Fatalf("stack %d: duplicate delivery of %s", i, key)
			}
			seen[key] = true
			orders[i] = append(orders[i], key)
		}
		if dropped := c.Dropped(i); dropped != 0 {
			t.Fatalf("stack %d: %d deliveries dropped by the test buffer", i, dropped)
		}
	}
	for i := 1; i < n; i++ {
		if len(orders[i]) != len(orders[0]) {
			t.Fatalf("stack %d delivered %d, stack 0 delivered %d", i, len(orders[i]), len(orders[0]))
		}
		for j := range orders[0] {
			if orders[i][j] != orders[0][j] {
				t.Fatalf("total order diverges at position %d: stack %d saw %s, stack 0 saw %s",
					j, i, orders[i][j], orders[0][j])
			}
		}
	}
}
