package dpu_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/dpu"
)

// TestSubscriptionDropOldest fills a 4-slot buffer with 10 deliveries
// and asserts the drop-oldest policy: 6 counted drops, and the buffer
// holds the newest 4 events in order.
func TestSubscriptionDropOldest(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n0.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 4, Policy: dpu.DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n1, err := c.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := n1.Broadcast(ctx, []byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The legacy channel is published after the subscription inside the
	// same pump event, so once it has all 10 the subscription's
	// bookkeeping for all 10 is complete.
	drain(t, c, 0, 10)

	if got := sub.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	for i := 6; i < 10; i++ {
		select {
		case d := <-sub.Deliveries():
			if want := fmt.Sprintf("m-%d", i); string(d.Data) != want {
				t.Errorf("buffered delivery = %q, want %q", d.Data, want)
			}
		case <-time.After(timeout):
			t.Fatal("buffered delivery missing")
		}
	}
	select {
	case d := <-sub.Deliveries():
		t.Errorf("unexpected extra delivery %q", d.Data)
	default:
	}
}

// TestSubscriptionBlock asserts the Block policy: nothing is dropped
// and the stack stalls against the full buffer until the consumer
// drains — then every event comes through in order.
func TestSubscriptionBlock(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n0.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 2, Policy: dpu.Block})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n1, err := c.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := n1.Broadcast(ctx, []byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The subscription publish precedes the legacy channel in stack 0's
	// pump: events 0 and 1 pass through, event 2 blocks the executor,
	// so the legacy stream sees exactly two deliveries and then stalls.
	drain(t, c, 0, 2)
	select {
	case d := <-c.Deliveries(0):
		t.Fatalf("legacy stream advanced past the blocked publish: %q", d.Data)
	case <-time.After(300 * time.Millisecond):
	}

	// Draining the subscription releases the stack; all five events
	// arrive in order with zero drops.
	for i := 0; i < 5; i++ {
		select {
		case d := <-sub.Deliveries():
			if want := fmt.Sprintf("b-%d", i); string(d.Data) != want {
				t.Errorf("delivery %d = %q, want %q", i, d.Data, want)
			}
		case <-time.After(timeout):
			t.Fatalf("delivery %d missing", i)
		}
	}
	if got := sub.Dropped(); got != 0 {
		t.Errorf("Dropped = %d under Block", got)
	}
	drain(t, c, 0, 3) // legacy stream catches up too
}

// TestSubscriptionCloseUnblocksPublisher closes a subscription while
// the stack is blocked publishing into it and checks the cluster keeps
// working.
func TestSubscriptionCloseUnblocksPublisher(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n0.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 1, Policy: dpu.Block})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n1, err := c.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := n1.Broadcast(ctx, []byte(fmt.Sprintf("x-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, c, 0, 1) // the publisher is now blocked on event 2
	sub.Close()       // must unblock it
	drain(t, c, 0, 2) // remaining events flow again
	for range sub.Deliveries() {
		// Buffered events stay readable; the loop must end on close.
	}
	// The stack still serves new traffic.
	if err := n0.Broadcast(ctx, []byte("after")); err != nil {
		t.Fatal(err)
	}
	drain(t, c, 0, 1)
}

// TestSubscriptionUnselectedStreamsClosed checks that a stream not
// requested in SubscribeOptions is closed instead of nil, so ranging
// over it ends instead of blocking forever.
func TestSubscriptionUnselectedStreamsClosed(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(44))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n0.Subscribe(dpu.SubscribeOptions{Deliveries: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, ok := <-sub.Switches(); ok {
		t.Error("unselected Switches stream not closed")
	}
	if _, ok := <-sub.Views(); ok {
		t.Error("unselected Views stream not closed")
	}
}

// TestSubscriptionSwitchStream receives switch events through a
// subscription.
func TestSubscriptionSwitchStream(t *testing.T) {
	c, err := dpu.New(3, dpu.WithSeed(45))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n2, err := c.Node(2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n2.Subscribe(dpu.SubscribeOptions{Switches: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if _, err := c.ChangeProtocolAll(ctx, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Switches():
		if ev.Stack != 2 || ev.Epoch != 1 || ev.Protocol != dpu.ProtocolSequencer {
			t.Errorf("switch event = %+v", ev)
		}
	case <-time.After(timeout):
		t.Fatal("no switch event on subscription")
	}
}

// TestLegacyDroppedCounter fills the legacy per-stack delivery buffer
// and checks the overflow is counted and the oldest entries are the
// ones lost.
func TestLegacyDroppedCounter(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(46), dpu.WithDeliveryBuffer(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n1, err := c.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	// A blocking observer tells us when all 6 have been ordered; the
	// legacy channel of stack 0 is left unread so it overflows.
	sub, err := n1.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 16, Policy: dpu.Block})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for i := 0; i < 6; i++ {
		if err := n1.Broadcast(ctx, []byte(fmt.Sprintf("d-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		select {
		case <-sub.Deliveries():
		case <-time.After(timeout):
			t.Fatal("stack 1 did not deliver")
		}
	}
	// Stack 0's pump runs independently of stack 1's: poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for c.Dropped(0) != 4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Dropped(0); got != 4 {
		t.Fatalf("Dropped(0) = %d, want 4", got)
	}
	// The two buffered survivors are the oldest not-yet-dropped ones —
	// the legacy channel drops newest-on-overflow, keeping 0 and 1.
	ds := drain(t, c, 0, 2)
	if string(ds[0].Data) != "d-0" || string(ds[1].Data) != "d-1" {
		t.Errorf("survivors = %q, %q", ds[0].Data, ds[1].Data)
	}
}
