package dpu

import (
	"context"
	"fmt"

	"repro/internal/metrics"
)

// restartsCounter counts crashed or evicted members successfully
// revived through Restart/RestartAsync.
var restartsCounter = metrics.NewCounter("membership.restarts")

// Restart revives a crashed (or evicted) member's process as a fresh
// member of the group: the dead slot stays retired forever, and the
// restarted node is admitted through the ordered view mechanism under a
// new deterministic id — ids are never reused, so no survivor can
// confuse the incarnations. The revival is an ordinary Assign-join: a
// local sponsor orders it, every member installs the admitting view,
// and the new stack boots on the committed cut, delivering the exact
// totally-ordered suffix everyone else delivers.
//
// stack must name a retired local slot (ErrStillRunning if it is still
// running, ErrRemoteStack if another process hosts it). The new member
// joins with an empty endpoint, which is correct over the built-in
// simulated LAN; over a real-socket transport use RestartAt with a
// fresh endpoint (the crashed incarnation's socket may still hold the
// old one). Requires WithMembership.
func (c *Cluster) Restart(ctx context.Context, stack int) (*Node, error) {
	return c.RestartAt(ctx, stack, "")
}

// RestartAt is Restart with an explicit transport endpoint for the
// revived member ("host:port" over a real-socket transport).
func (c *Cluster) RestartAt(ctx context.Context, stack int, endpoint string) (*Node, error) {
	if err := c.restartable(stack); err != nil {
		return nil, err
	}
	n, err := c.admit(ctx, endpoint)
	if err != nil {
		return nil, err
	}
	restartsCounter.Add(1)
	return n, nil
}

// RestartAsync is the non-blocking variant of Restart for callers that
// must not wait on cluster progress — the virtual-time scenario driver.
// done is invoked on the sponsor's executor with the revived node (or
// the error); it must not block. The error returned by RestartAsync
// itself only covers validation and submission.
func (c *Cluster) RestartAsync(stack int, done func(*Node, error)) error {
	return c.RestartAtAsync(stack, "", done)
}

// RestartAtAsync is RestartAsync with an explicit transport endpoint
// for the revived member ("host:port" over a real-socket transport,
// where the crashed incarnation's socket may still hold the old one).
func (c *Cluster) RestartAtAsync(stack int, endpoint string, done func(*Node, error)) error {
	if err := c.restartable(stack); err != nil {
		return err
	}
	return c.AddNodeAsync(endpoint, func(n *Node, err error) {
		if err == nil {
			restartsCounter.Add(1)
		}
		done(n, err)
	})
}

// restartable validates that stack names a local slot that has crashed
// or been evicted — the only state Restart may revive.
func (c *Cluster) restartable(stack int) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if stack < 0 || stack >= len(c.slots) {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, stack, len(c.slots))
	}
	s := c.slots[stack]
	if s == nil {
		return fmt.Errorf("%w: stack %d", ErrRemoteStack, stack)
	}
	if !s.retired.Load() && s.st.Running() {
		return fmt.Errorf("%w: stack %d must crash or be evicted before Restart", ErrStillRunning, stack)
	}
	return nil
}

// Restart revives this node's crashed slot as a fresh member (see
// Cluster.Restart). Unlike every other Node method, it is valid on a
// dead handle — that is its whole point — and returns the NEW node
// handle, carrying the new id; the receiver keeps naming the retired
// incarnation.
func (n *Node) Restart(ctx context.Context) (*Node, error) {
	return n.c.Restart(ctx, n.id)
}
