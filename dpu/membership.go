package dpu

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/gm"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// joinSyncsCounter counts joiner sync cuts served by this process
// (AddNode commits and ServeJoin handshakes).
var joinSyncsCounter = metrics.NewCounter("membership.join_syncs_served")

// joinRetriesCounter counts join handshake attempts that failed at the
// transport level and were retried under WithJoinRetry.
var joinRetriesCounter = metrics.NewCounter("membership.join_retries")

// AddNode admits a brand-new member to a running cluster and hosts its
// stack in this process: a fresh id is assigned at the commit point of
// the ordered join, every member installs the view admitting it, and
// the new stack boots on the coherent cut the join created — the epoch
// boundary where every layer (rbcast destinations, rp2p peers, fd
// monitors, consensus quorums, transport routes) already includes it.
// From that epoch on the newcomer delivers the exact totally-ordered
// suffix the founders deliver.
//
// endpoint is the new node's transport endpoint ("host:port" over a
// real-socket transport; "" over the built-in simulated LAN). Requires
// WithMembership (ErrNoMembership otherwise).
func (c *Cluster) AddNode(ctx context.Context, endpoint string) (*Node, error) {
	return c.admit(ctx, endpoint)
}

// admit is the shared body of AddNode and Restart: order an Assign-join
// through a local sponsor, then boot the admitted member's stack on the
// committed cut.
func (c *Cluster) admit(ctx context.Context, endpoint string) (*Node, error) {
	res, err := c.sponsorJoin(ctx, endpoint)
	if err != nil {
		return nil, err
	}
	id := int(res.Member)
	boot := func() error {
		// The sponsor's commit admits the route on its own executor pass
		// asynchronously; admit it here too so the joiner's socket can
		// open before that pass runs.
		if endpoint != "" {
			if r, ok := c.tr.(transport.Router); ok {
				if err := r.AddRoute(transport.Addr(id), endpoint); err != nil {
					return err
				}
			}
		}
		reg := c.newRegistry(bootCut{
			protocol:  res.Protocol,
			epoch:     res.Epoch,
			viewID:    res.View.ID,
			nextID:    res.NextID,
			endpoints: res.Endpoints,
		})
		_, err := c.buildStack(id, res.View.Members, reg)
		return err
	}
	if err := boot(); err != nil {
		// The join already committed: every member's view, quorum and
		// monitor set now count a stack that never started. Evict the
		// phantom so the group's fault tolerance is not silently reduced.
		ectx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, eerr := c.compensateEvict(ectx, id); eerr != nil {
			return nil, fmt.Errorf("dpu: joiner stack %d failed (%w); compensating eviction also failed: %v", id, err, eerr)
		}
		return nil, fmt.Errorf("dpu: joiner stack %d failed and was evicted again: %w", id, err)
	}
	return &Node{c: c, id: id}, nil
}

// AddNodeAsync is the non-blocking variant of AddNode for callers that
// must not wait on cluster progress — the virtual-time scenario driver,
// whose clock goroutine IS what makes the commit happen. The Assign-join
// is ordered through a sponsor; when it commits, the joiner's stack is
// booted inline on the sponsor's executor and done is invoked there with
// the new node (or the boot error, after a compensating eviction is
// ordered). done must not block. The error returned by AddNodeAsync
// itself only covers submission (no membership, no running sponsor).
func (c *Cluster) AddNodeAsync(endpoint string, done func(*Node, error)) error {
	if !c.membership {
		return fmt.Errorf("%w: enable it with WithMembership", ErrNoMembership)
	}
	var sponsor *stackSlot
	for _, s := range c.localSlots() {
		if s.st.Running() {
			sponsor = s
			break
		}
	}
	if sponsor == nil {
		return fmt.Errorf("%w: no local running stack to sponsor the join", ErrNotRunning)
	}
	sponsor.st.Call(gm.Service, gm.Join{
		Assign:   true,
		Endpoint: endpoint,
		Reply: func(r gm.Result) {
			if r.Err != nil {
				done(nil, r.Err)
				return
			}
			joinSyncsCounter.Add(1)
			id := int(r.Member)
			if endpoint != "" {
				if router, ok := c.tr.(transport.Router); ok {
					if err := router.AddRoute(transport.Addr(id), endpoint); err != nil {
						c.Leave(sponsor.id, id) //nolint:errcheck // compensating, best effort
						done(nil, err)
						return
					}
				}
			}
			reg := c.newRegistry(bootCut{
				protocol:  r.Protocol,
				epoch:     r.Epoch,
				viewID:    r.View.ID,
				nextID:    r.NextID,
				endpoints: r.Endpoints,
			})
			if _, err := c.buildStack(id, r.View.Members, reg); err != nil {
				c.Leave(sponsor.id, id) //nolint:errcheck // compensating, best effort
				done(nil, err)
				return
			}
			done(&Node{c: c, id: id}, nil)
		},
	})
	return nil
}

// compensateEvict orders the removal of a member through any local
// running stack (used when a committed join could not be followed by a
// working stack).
func (c *Cluster) compensateEvict(ctx context.Context, member int) (View, error) {
	for _, s := range c.localSlots() {
		if s.st.Running() && s.id != member {
			return (&Node{c: c, id: s.id}).Evict(ctx, member)
		}
	}
	return View{}, fmt.Errorf("%w: no local running stack", ErrNotRunning)
}

// sponsorJoin orders an Assign-join through the lowest-indexed local
// running stack and waits for its commit, returning the sync cut a
// joiner boots from.
func (c *Cluster) sponsorJoin(ctx context.Context, endpoint string) (gm.Result, error) {
	if !c.membership {
		return gm.Result{}, fmt.Errorf("%w: enable it with WithMembership", ErrNoMembership)
	}
	var sponsor *stackSlot
	for _, s := range c.localSlots() {
		if s.st.Running() {
			sponsor = s
			break
		}
	}
	if sponsor == nil {
		return gm.Result{}, fmt.Errorf("%w: no local running stack to sponsor the join", ErrNotRunning)
	}
	reply := make(chan gm.Result, 1)
	sponsor.st.Call(gm.Service, gm.Join{
		Assign:   true,
		Endpoint: endpoint,
		Reply:    func(r gm.Result) { reply <- r },
	})
	select {
	case r := <-reply:
		if r.Err != nil {
			return gm.Result{}, r.Err
		}
		joinSyncsCounter.Add(1)
		return r, nil
	case <-ctx.Done():
		return gm.Result{}, ctx.Err()
	case <-sponsor.st.Done():
		return gm.Result{}, fmt.Errorf("%w: stack %d", ErrNotRunning, sponsor.id)
	case <-c.closed:
		return gm.Result{}, ErrClosed
	}
}

// joinRequest and joinResponse are the JSON handshake between a joining
// process (Join) and a member process (ServeJoin): one request line,
// one response line, over TCP.
type joinRequest struct {
	Endpoint string `json:"endpoint"`
}

type joinResponse struct {
	Error     string         `json:"error,omitempty"`
	Member    int            `json:"member"`
	Epoch     uint64         `json:"epoch"`
	ViewID    uint64         `json:"view_id"`
	NextID    int            `json:"next_id"`
	Protocol  string         `json:"protocol"`
	Members   []int          `json:"members"`
	Endpoints map[int]string `json:"endpoints"`
}

// ServeJoin accepts join handshakes on the listener: each connection
// carries one joinRequest, is ordered through this cluster as an
// Assign-join, and is answered with the committed sync cut. The
// listener is closed when the cluster closes. Requires WithMembership
// and, for the joiner to be reachable, a real-socket transport with
// endpoints configured (WithEndpoints).
func (c *Cluster) ServeJoin(l net.Listener) error {
	if !c.membership {
		return fmt.Errorf("%w: enable it with WithMembership", ErrNoMembership)
	}
	go func() {
		<-c.closed
		l.Close()
	}()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go c.serveJoinConn(conn)
		}
	}()
	return nil
}

func (c *Cluster) serveJoinConn(conn net.Conn) {
	defer conn.Close()
	timeout := c.opts.joinTimeout
	//dpulint:ignore clocktime TCP I/O deadline on a real socket; kernel OS timers are wall-clock by definition
	conn.SetDeadline(time.Now().Add(timeout))
	var req joinRequest
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&req); err != nil {
		return
	}
	enc := json.NewEncoder(conn)
	// The ordered join gets 3/4 of the connection budget, leaving room
	// to write the response (or the error) before the deadline hits.
	ctx, cancel := context.WithTimeout(context.Background(), timeout*3/4)
	defer cancel()
	res, err := c.sponsorJoin(ctx, req.Endpoint)
	if err != nil {
		enc.Encode(joinResponse{Error: err.Error()})
		return
	}
	resp := joinResponse{
		Member:    int(res.Member),
		Epoch:     res.Epoch,
		ViewID:    res.View.ID,
		NextID:    int(res.NextID),
		Protocol:  res.Protocol,
		Members:   make([]int, len(res.View.Members)),
		Endpoints: make(map[int]string, len(res.Endpoints)),
	}
	for i, m := range res.View.Members {
		resp.Members[i] = int(m)
	}
	for p, ep := range res.Endpoints {
		resp.Endpoints[int(p)] = ep
	}
	enc.Encode(resp)
}

// Join connects a fresh OS process to a running multi-process cluster:
// it performs the ServeJoin handshake against a member at sponsorAddr
// (TCP), then boots a single-stack cluster over real UDP sockets on the
// committed cut — this process's stack is the newly admitted member,
// listening on selfEndpoint. The returned Node delivers the same
// totally-ordered suffix as every founding member, from its join epoch
// on.
//
// Functional options are honored where they make sense for a joiner
// (WithGrace, WithBatching, WithMaxOutstanding, WithDeliveryBuffer,
// WithSeed, WithJoinTimeout, WithJoinRetry, consensus variants and
// extra protocol implementations — which must match the founders'
// registries); the initial protocol, epoch and membership come from the
// handshake.
//
// Each handshake attempt is bounded by WithJoinTimeout (default 60s) or
// a shorter ctx deadline; with WithJoinRetry, transport-level failures
// (sponsor not listening yet, sponsor dying mid-handshake) are retried
// with capped exponential backoff, so a restarting process rides out a
// briefly-dead sponsor.
func Join(ctx context.Context, sponsorAddr, selfEndpoint string, opts ...Option) (*Cluster, *Node, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	backoffClock := o.clock
	if backoffClock == nil {
		backoffClock = vclock.Wall
	}
	// The retry schedule is the stream backend's: the same Backoff type
	// and WaitBackoff clock discipline that drive TCP reconnects drive
	// the join handshake, so their semantics are tested in one place.
	backoff := transport.NewBackoff(o.joinRetry.base, o.joinRetry.max, o.net.Seed^0x6a014e5e)
	var resp joinResponse
	for attempt := 1; ; attempt++ {
		var retryable bool
		var err error
		resp, retryable, err = joinHandshake(ctx, sponsorAddr, selfEndpoint, o.joinTimeout)
		if err == nil {
			break
		}
		if !retryable || attempt >= o.joinRetry.attempts {
			return nil, nil, err
		}
		joinRetriesCounter.Add(1)
		if werr := transport.WaitBackoff(ctx, backoffClock, backoff.Delay(attempt)); werr != nil {
			return nil, nil, fmt.Errorf("dpu: join aborted during backoff: %w", werr)
		}
	}

	book := make(map[transport.Addr]string, len(resp.Endpoints)+1)
	endpoints := make(map[kernel.Addr]string, len(resp.Endpoints)+1)
	for id, ep := range resp.Endpoints {
		book[transport.Addr(id)] = ep
		endpoints[kernel.Addr(id)] = ep
	}
	book[transport.Addr(resp.Member)] = selfEndpoint
	endpoints[kernel.Addr(resp.Member)] = selfEndpoint
	udpTr, err := transport.NewUDP(transport.UDPConfig{Book: book})
	if err != nil {
		return nil, nil, err
	}
	var tr transport.Transport = udpTr
	var faulty *transport.FaultyTransport
	if o.faults {
		faulty = transport.Faulty(tr, transport.FaultConfig{Seed: o.net.Seed ^ 0x5eedfa17})
		tr = faulty
	}

	o.membership = true
	o.transport = tr
	impls, err := buildImpls(o)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	size := resp.NextID
	if resp.Member >= size {
		size = resp.Member + 1
	}
	c := &Cluster{
		tr:         tr,
		faulty:     faulty,
		impls:      impls,
		membership: true,
		opts:       o,
		clock:      vclock.Wall, // joiners run over real sockets: wall time only
		slots:      make([]*stackSlot, size),
		closed:     make(chan struct{}),
	}
	reg := c.newRegistry(bootCut{
		protocol:  resp.Protocol,
		epoch:     resp.Epoch,
		viewID:    resp.ViewID,
		nextID:    kernel.Addr(resp.NextID),
		endpoints: endpoints,
	})
	peers := make([]kernel.Addr, len(resp.Members))
	for i, m := range resp.Members {
		peers[i] = kernel.Addr(m)
	}
	if _, err := c.buildStack(resp.Member, peers, reg); err != nil {
		c.Close()
		return nil, nil, err
	}
	node, err := c.Node(resp.Member)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, node, nil
}

// joinHandshake performs one dial+exchange against a ServeJoin
// listener, bounded by timeout (or a shorter ctx deadline). The second
// return reports whether the failure is transport-level and worth
// retrying; a sponsor that answered with a refusal is final.
func joinHandshake(ctx context.Context, sponsorAddr, selfEndpoint string, timeout time.Duration) (joinResponse, bool, error) {
	conn, err := transport.DialStream(ctx, sponsorAddr, timeout)
	if err != nil {
		return joinResponse{}, true, fmt.Errorf("dpu: join handshake: %w", err)
	}
	defer conn.Close()
	//dpulint:ignore clocktime TCP I/O deadline on a real socket; kernel OS timers are wall-clock by definition
	dl := time.Now().Add(timeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	conn.SetDeadline(dl)
	if err := json.NewEncoder(conn).Encode(joinRequest{Endpoint: selfEndpoint}); err != nil {
		return joinResponse{}, true, fmt.Errorf("dpu: join handshake: %w", err)
	}
	var resp joinResponse
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return joinResponse{}, true, fmt.Errorf("dpu: join handshake: %w", err)
	}
	if resp.Error != "" {
		return joinResponse{}, false, fmt.Errorf("dpu: join refused: %s", resp.Error)
	}
	return resp, false, nil
}
