// Package dpu is the public API of the dynamic-protocol-update library:
// a reproduction of "Structural and Algorithmic Issues of Dynamic
// Protocol Update" (Rütti, Wojciechowski, Schiper — IPDPS 2006).
//
// A Cluster assembles n protocol stacks (the paper's machines) over a
// simulated LAN — or, with WithTransport, over real UDP sockets
// spanning OS processes and hosts — each running the Figure-4
// group-communication stack —
// UDP, reliable point-to-point, failure detector, Chandra–Toueg
// consensus, atomic broadcast — topped by the replacement module that
// makes the atomic-broadcast protocol hot-swappable:
//
//	c, _ := dpu.New(3)
//	defer c.Close()
//	c.Broadcast(0, []byte("hello"))          // totally ordered
//	c.ChangeProtocol(0, dpu.ProtocolSequencer) // live, no interruption
//	for d := range c.Deliveries(1) { ... }
//
// Messages broadcast before, during and after a ChangeProtocol are
// delivered exactly once, in the same total order, on every stack.
package dpu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/kernel"
	"repro/internal/rbcast"
	"repro/internal/rp2p"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udp"
)

// Bundled atomic-broadcast protocol names for ChangeProtocol.
const (
	// ProtocolCT is the uniform, crash-tolerant Chandra–Toueg atomic
	// broadcast (consensus-based) — the paper's measured protocol.
	ProtocolCT = abcast.ProtocolCT
	// ProtocolSequencer is the fixed-sequencer variant.
	ProtocolSequencer = abcast.ProtocolSeq
	// ProtocolToken is the moving-sequencer (token) variant.
	ProtocolToken = abcast.ProtocolToken
)

// Protocols returns the names of the bundled protocols.
func Protocols() []string {
	return []string{ProtocolCT, ProtocolSequencer, ProtocolToken}
}

// Delivery is one totally-ordered message as observed by one stack.
type Delivery struct {
	Stack  int // the observing stack
	Origin int // the broadcasting stack
	Data   []byte
	At     time.Time
}

// SwitchEvent reports a completed protocol replacement on one stack.
type SwitchEvent struct {
	Stack    int
	Epoch    uint64 // Algorithm 1's seqNumber after the switch
	Protocol string
	At       time.Time
	Reissued int // undelivered messages re-broadcast through the new protocol
}

// View is a group-membership view (requires WithMembership).
type View struct {
	ID      uint64
	Members []int
}

// Status is a snapshot of one stack's replacement layer.
type Status struct {
	Epoch       uint64
	Protocol    string
	Undelivered int
}

type options struct {
	protocol     string
	net          simnet.Config
	transport    transport.Transport
	local        []int
	grace        time.Duration
	membership   bool
	buffer       int
	extraImpls   []abcast.Impl
	consVariants []consensus.Config
	tracer       kernel.Tracer
}

// Option configures New.
type Option func(*options)

// WithInitialProtocol selects the protocol installed at epoch 0
// (default ProtocolCT).
func WithInitialProtocol(name string) Option {
	return func(o *options) { o.protocol = name }
}

// WithSeed makes the simulated network's fates reproducible.
func WithSeed(seed int64) Option {
	return func(o *options) { o.net.Seed = seed }
}

// WithLatency sets the one-way network latency (default 100µs) and
// jitter (default latency/2).
func WithLatency(base, jitter time.Duration) Option {
	return func(o *options) { o.net.BaseLatency, o.net.Jitter = base, jitter }
}

// WithLoss sets the packet loss probability in [0,1].
func WithLoss(p float64) Option {
	return func(o *options) { o.net.LossRate = p }
}

// WithBandwidth models a shared medium of the given bits per second.
func WithBandwidth(bps float64) Option {
	return func(o *options) { o.net.BandwidthBps = bps }
}

// WithGrace sets how long a replaced protocol module keeps draining
// before it is removed (default 500ms).
func WithGrace(d time.Duration) Option {
	return func(o *options) { o.grace = d }
}

// WithMembership adds the group-membership module (GM in Figure 4) on
// top of the replaceable atomic broadcast.
func WithMembership() Option {
	return func(o *options) { o.membership = true }
}

// WithDeliveryBuffer sets the per-stack delivery channel capacity
// (default 8192). When a consumer lags behind, the oldest unread
// deliveries are counted as dropped (see Dropped).
func WithDeliveryBuffer(n int) Option {
	return func(o *options) { o.buffer = n }
}

// WithProtocolImpl registers a custom atomic-broadcast implementation
// so ChangeProtocol can switch to it. See abcast.Impl for the contract.
func WithProtocolImpl(im abcast.Impl) Option {
	return func(o *options) { o.extraImpls = append(o.extraImpls, im) }
}

// WithConsensusVariant registers a CT atomic-broadcast variant that
// runs on its own consensus protocol instance — the paper's
// consensus-replacement extension. implName is the protocol name to
// pass to ChangeProtocol; policy selects the coordinator strategy of
// the new consensus protocol.
func WithConsensusVariant(implName string, policy consensus.CoordPolicy) Option {
	return func(o *options) {
		svc := kernel.ServiceID("consensus/" + implName)
		o.extraImpls = append(o.extraImpls, abcast.CTImplOn(implName, svc))
		o.consVariants = append(o.consVariants, consensus.Config{
			Service:    svc,
			Protocol:   "consensus@" + implName,
			Channel:    "cons@" + implName,
			DecChannel: "cons-dec@" + implName,
			Policy:     policy,
		})
	}
}

// WithTransport runs the cluster over the given datagram fabric
// instead of the built-in simulated LAN — typically a real-socket
// transport built with transport.NewUDP and a static address book, so
// stacks can live in different OS processes or on different hosts (see
// WithLocalStacks and cmd/dpu-sim's -listen/-peers mode).
//
// With an external transport the simulation-only options (WithLatency,
// WithLoss, WithBandwidth) no longer shape the network — real links
// do — and the fault-injection methods Partition and Heal become
// no-ops; Crash still halts the local stack. Close closes the
// transport.
func WithTransport(tr transport.Transport) Option {
	return func(o *options) { o.transport = tr }
}

// WithLocalStacks restricts which of the n stacks this process hosts
// (default: all of them). The remaining addresses are expected to be
// served by other processes sharing the same transport address book.
// Cluster methods taking a stack index only accept local stacks.
func WithLocalStacks(ids ...int) Option {
	return func(o *options) { o.local = append(o.local, ids...) }
}

// WithTracer attaches a kernel tracer (e.g. trace.NewCollector()) to
// every stack.
func WithTracer(t kernel.Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// Cluster is a running group of n stacks — all hosted by this process
// (the default), or just the subset selected with WithLocalStacks when
// the group spans several processes over a shared transport.
type Cluster struct {
	n      int
	net    *simnet.Network // nil when running over an external transport
	tr     transport.Transport
	stacks []*kernel.Stack // indexed by stack id; nil for remote stacks

	deliveries []chan Delivery
	switches   []chan SwitchEvent
	views      []chan View
	dropped    []atomic.Uint64

	closeOnce sync.Once
}

// New assembles and starts a cluster of n stacks.
func New(n int, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dpu: cluster size %d < 1", n)
	}
	o := &options{
		protocol: ProtocolCT,
		net: simnet.Config{
			BaseLatency:  100 * time.Microsecond,
			Jitter:       50 * time.Microsecond,
			BandwidthBps: 100e6,
		},
		grace:  500 * time.Millisecond,
		buffer: 8192,
	}
	for _, opt := range opts {
		opt(o)
	}

	impls := abcast.StandardRegistry()
	for _, im := range o.extraImpls {
		if err := impls.Register(im); err != nil {
			return nil, err
		}
	}

	var (
		net *simnet.Network
		tr  = o.transport
	)
	if tr == nil {
		net = simnet.New(o.net)
		tr = transport.Sim(net)
	}
	local := make(map[int]bool, n)
	if len(o.local) == 0 {
		for i := 0; i < n; i++ {
			local[i] = true
		}
	}
	for _, id := range o.local {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("dpu: local stack %d out of range [0,%d)", id, n)
		}
		local[id] = true
	}

	reg := kernel.NewRegistry()
	reg.MustRegister(udp.Factory(tr))
	reg.MustRegister(rp2p.Factory(rp2p.Config{}))
	reg.MustRegister(rbcast.Factory(rbcast.Config{}))
	reg.MustRegister(fd.Factory(fd.Config{}))
	reg.MustRegister(consensus.Factory())
	for _, cv := range o.consVariants {
		reg.MustRegister(consensus.FactoryWith(cv))
	}
	reg.MustRegister(core.Factory(core.Config{
		InitialProtocol: o.protocol,
		Impls:           impls,
		Grace:           o.grace,
		RetryLostChange: true,
	}))
	if o.membership {
		reg.MustRegister(gm.Factory())
	}

	c := &Cluster{
		n:          n,
		net:        net,
		tr:         tr,
		stacks:     make([]*kernel.Stack, n),
		deliveries: make([]chan Delivery, n),
		switches:   make([]chan SwitchEvent, n),
		views:      make([]chan View, n),
		dropped:    make([]atomic.Uint64, n),
	}
	peers := make([]kernel.Addr, n)
	for i := range peers {
		peers[i] = kernel.Addr(i)
	}
	for i := 0; i < n; i++ {
		if !local[i] {
			continue
		}
		st := kernel.NewStack(kernel.Config{
			Addr: kernel.Addr(i), Peers: peers, Registry: reg,
			Seed: o.net.Seed + int64(i), Tracer: o.tracer,
		})
		c.stacks[i] = st
		c.deliveries[i] = make(chan Delivery, o.buffer)
		c.switches[i] = make(chan SwitchEvent, 64)
		c.views[i] = make(chan View, 64)
		i := i
		var buildErr error
		err := st.DoSync(func() {
			if _, e := st.CreateProtocol(core.Protocol); e != nil {
				buildErr = e
				return
			}
			// A transport bind failure inside the build (real sockets:
			// port conflict, bad address) can only be recorded by the
			// udp module; surface it instead of returning a cluster
			// that silently drops all traffic.
			if um, ok := st.Provider(udp.Service).(*udp.Module); ok {
				if e := um.OpenErr(); e != nil {
					buildErr = e
					return
				}
			}
			if o.membership {
				if _, e := st.CreateProtocol(gm.Protocol); e != nil {
					buildErr = e
					return
				}
			}
			pump := &pumpModule{Base: kernel.NewBase(st, "dpu/pump"), c: c, stack: i}
			st.AddModule(pump)
			st.Subscribe(core.Service, pump)
			if o.membership {
				st.Subscribe(gm.Service, pump)
			}
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if buildErr != nil {
			c.Close()
			return nil, buildErr
		}
	}
	return c, nil
}

// pumpModule forwards public-service indications into the cluster's
// channels, dropping (and counting) when a consumer lags.
type pumpModule struct {
	kernel.Base
	c     *Cluster
	stack int
}

func (p *pumpModule) HandleIndication(_ kernel.ServiceID, ind kernel.Indication) {
	switch v := ind.(type) {
	case core.Deliver:
		kind, body, err := envelope.Unwrap(v.Data)
		if err != nil || kind != envelope.KindApp {
			return
		}
		d := Delivery{Stack: p.stack, Origin: int(v.Origin), Data: body, At: time.Now()}
		select {
		case p.c.deliveries[p.stack] <- d:
		default:
			p.c.dropped[p.stack].Add(1)
		}
	case core.Switched:
		ev := SwitchEvent{Stack: p.stack, Epoch: v.Sn, Protocol: v.Protocol, At: v.At, Reissued: v.Reissued}
		select {
		case p.c.switches[p.stack] <- ev:
		default:
		}
	case gm.NewView:
		members := make([]int, len(v.View.Members))
		for i, m := range v.View.Members {
			members[i] = int(m)
		}
		select {
		case p.c.views[p.stack] <- View{ID: v.View.ID, Members: members}:
		default:
		}
	}
}

func (c *Cluster) check(stack int) error {
	if stack < 0 || stack >= c.n {
		return fmt.Errorf("dpu: stack %d out of range [0,%d)", stack, c.n)
	}
	if c.stacks[stack] == nil {
		return fmt.Errorf("dpu: stack %d is not local to this process", stack)
	}
	if !c.stacks[stack].Running() {
		return fmt.Errorf("dpu: stack %d is not running", stack)
	}
	return nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.n }

// Broadcast atomically broadcasts data from the stack: it will be
// delivered exactly once, in the same total order, on every stack.
func (c *Cluster) Broadcast(stack int, data []byte) error {
	if err := c.check(stack); err != nil {
		return err
	}
	c.stacks[stack].Call(core.Service, core.Broadcast{Data: envelope.Wrap(envelope.KindApp, data)})
	return nil
}

// ChangeProtocol replaces the atomic-broadcast protocol on every stack,
// on the fly, without interrupting service (Algorithm 1). Any stack may
// initiate.
func (c *Cluster) ChangeProtocol(stack int, protocol string) error {
	if err := c.check(stack); err != nil {
		return err
	}
	c.stacks[stack].Call(core.Service, core.ChangeProtocol{Protocol: protocol})
	return nil
}

// Deliveries returns the stack's totally-ordered delivery stream (nil
// for a stack not hosted by this process).
func (c *Cluster) Deliveries(stack int) <-chan Delivery { return c.deliveries[stack] }

// Switches returns the stack's protocol-replacement events.
func (c *Cluster) Switches(stack int) <-chan SwitchEvent { return c.switches[stack] }

// Views returns the stack's membership views (requires WithMembership).
func (c *Cluster) Views(stack int) <-chan View { return c.views[stack] }

// Dropped reports deliveries discarded because the consumer of
// Deliveries(stack) lagged behind the buffer.
func (c *Cluster) Dropped(stack int) uint64 { return c.dropped[stack].Load() }

// Status returns a snapshot of the stack's replacement layer.
func (c *Cluster) Status(stack int) (Status, error) {
	if err := c.check(stack); err != nil {
		return Status{}, err
	}
	got := make(chan core.Status, 1)
	c.stacks[stack].Call(core.Service, core.StatusReq{Reply: func(s core.Status) { got <- s }})
	select {
	case s := <-got:
		return Status{Epoch: s.Sn, Protocol: s.Protocol, Undelivered: s.Undelivered}, nil
	case <-time.After(10 * time.Second):
		return Status{}, fmt.Errorf("dpu: stack %d status timed out", stack)
	}
}

// Join adds a member to the logical group view (requires WithMembership).
func (c *Cluster) Join(stack, member int) error {
	if err := c.check(stack); err != nil {
		return err
	}
	c.stacks[stack].Call(gm.Service, gm.Join{P: kernel.Addr(member)})
	return nil
}

// Leave removes a member from the logical group view.
func (c *Cluster) Leave(stack, member int) error {
	if err := c.check(stack); err != nil {
		return err
	}
	c.stacks[stack].Call(gm.Service, gm.Leave{P: kernel.Addr(member)})
	return nil
}

// Crash kills the stack abruptly: its events are discarded and its
// network traffic stops, modelling a machine crash. Only local stacks
// can be crashed; over an external transport the network isolation is
// skipped (the halted stack simply goes silent).
func (c *Cluster) Crash(stack int) error {
	if stack < 0 || stack >= c.n {
		return fmt.Errorf("dpu: stack %d out of range", stack)
	}
	if c.stacks[stack] == nil {
		return fmt.Errorf("dpu: stack %d is not local to this process", stack)
	}
	if c.net != nil {
		c.net.SetDown(simnet.Addr(stack), true)
	}
	c.stacks[stack].Crash()
	return nil
}

// Partition cuts the network link between two stacks. It requires the
// built-in simulated network and is a no-op over WithTransport.
func (c *Cluster) Partition(a, b int) {
	if c.net != nil {
		c.net.Cut(simnet.Addr(a), simnet.Addr(b))
	}
}

// Heal restores the link between two stacks. It requires the built-in
// simulated network and is a no-op over WithTransport.
func (c *Cluster) Heal(a, b int) {
	if c.net != nil {
		c.net.Heal(simnet.Addr(a), simnet.Addr(b))
	}
}

// Stack exposes the underlying kernel stack for advanced composition
// (binding custom modules, inspecting services); nil for a stack not
// hosted by this process. See internal/kernel's concurrency contract.
func (c *Cluster) Stack(stack int) *kernel.Stack { return c.stacks[stack] }

// Close shuts the cluster down — including the transport, whether
// built-in or passed via WithTransport — and closes the local stacks'
// delivery channels.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		c.tr.Close()
		for _, st := range c.stacks {
			if st != nil && st.Running() {
				st.Close()
			}
		}
		for i := range c.deliveries {
			if c.deliveries[i] != nil {
				close(c.deliveries[i])
				close(c.switches[i])
				close(c.views[i])
			}
		}
	})
}
