package dpu

import (
	"fmt"
	"time"

	"repro/internal/abcast"
)

// Bundled atomic-broadcast protocol names for ChangeProtocol.
const (
	// ProtocolCT is the uniform, crash-tolerant Chandra–Toueg atomic
	// broadcast (consensus-based) — the paper's measured protocol.
	ProtocolCT = abcast.ProtocolCT
	// ProtocolSequencer is the fixed-sequencer variant.
	ProtocolSequencer = abcast.ProtocolSeq
	// ProtocolToken is the moving-sequencer (token) variant.
	ProtocolToken = abcast.ProtocolToken
)

// Protocols returns the names of the bundled protocols.
func Protocols() []string {
	return []string{ProtocolCT, ProtocolSequencer, ProtocolToken}
}

// Delivery is one totally-ordered message as observed by one stack.
type Delivery struct {
	Stack  int // the observing stack
	Origin int // the broadcasting stack
	Data   []byte
	At     time.Time
}

// SwitchEvent reports a completed protocol replacement on one stack.
type SwitchEvent struct {
	Stack    int
	Epoch    uint64 // Algorithm 1's seqNumber after the switch
	Protocol string
	At       time.Time
	Reissued int // undelivered messages re-broadcast through the new protocol
}

// View is a group-membership view (requires WithMembership).
type View struct {
	ID      uint64
	Members []int
}

// Status is a snapshot of one stack's replacement layer.
type Status struct {
	Epoch       uint64
	Protocol    string
	Undelivered int
	// ViewID and Members describe the installed membership view (the
	// founding view until a membership change commits).
	ViewID  uint64
	Members []int
}

// String renders the snapshot in one operator-readable line. The
// active protocol is always included alongside the view, so an
// adaptive switch (WithAdaptive) is observable wherever a status is
// printed — cmd/dpu-sim uses exactly this format.
func (s Status) String() string {
	return fmt.Sprintf("epoch=%d protocol=%s view=%d members=%v undelivered=%d",
		s.Epoch, s.Protocol, s.ViewID, s.Members, s.Undelivered)
}
