package dpu

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// AdaptivePolicy decides, from sampled runtime signals, which
// atomic-broadcast protocol the group should be running. The bundled
// policies are LossSensitivePolicy and LatencySensitivePolicy; custom
// ones implement internal/policy.Policy (threshold dead bands
// recommended — see docs/ADAPTIVE.md).
type AdaptivePolicy = policy.Policy

// LossSensitivePolicy switches to the consensus-based ProtocolCT when
// the estimated loss (RP2P retransmit ratio) crosses enterRatio and
// back to the leaner ProtocolSequencer when it falls below exitRatio.
// Pass 0 for the default thresholds (enter 0.05, exit 0.01).
func LossSensitivePolicy(enterRatio, exitRatio float64) AdaptivePolicy {
	return policy.LossSensitive{
		LossyProtocol: ProtocolCT, CleanProtocol: ProtocolSequencer,
		EnterRatio: enterRatio, ExitRatio: exitRatio,
	}
}

// LatencySensitivePolicy switches to the few-hop ProtocolSequencer
// when the smoothed ack round-trip time crosses enterRTT and back to
// the uniform ProtocolCT when it falls below exitRTT. Pass 0 for the
// default thresholds (enter 8ms, exit 4ms — calibrated against the
// loaded ack RTT, which sits at 1-3ms even on a ~100µs LAN; see
// internal/policy.LatencySensitive).
func LatencySensitivePolicy(enterRTT, exitRTT time.Duration) AdaptivePolicy {
	return policy.LatencySensitive{
		SlowPathProtocol: ProtocolSequencer, FastPathProtocol: ProtocolCT,
		EnterRTT: enterRTT, ExitRTT: exitRTT,
	}
}

// adaptiveOptions is the resolved WithAdaptive configuration.
type adaptiveOptions struct {
	policy   AdaptivePolicy
	interval time.Duration
	confirm  int
	cooldown time.Duration
	advisory bool
}

// AdaptiveOption tunes WithAdaptive.
type AdaptiveOption func(*adaptiveOptions)

// AdaptiveInterval sets the signal sampling period (default 50ms).
func AdaptiveInterval(d time.Duration) AdaptiveOption {
	return func(a *adaptiveOptions) { a.interval = d }
}

// AdaptiveConfirm sets how many consecutive samples must agree on a
// target before the engine acts (default 2) — the hysteresis that
// keeps an oscillating signal from flapping the group.
func AdaptiveConfirm(n int) AdaptiveOption {
	return func(a *adaptiveOptions) { a.confirm = n }
}

// AdaptiveCooldown sets the minimum time between switches (default
// 20× the sampling interval): however fast the environment flaps, the
// group pays for at most one switch per window.
func AdaptiveCooldown(d time.Duration) AdaptiveOption {
	return func(a *adaptiveOptions) { a.cooldown = d }
}

// Advisory makes the engine report what it would switch to — through
// Node.Advise and Subscribe(Advice) — without ever switching. Run a
// new policy in advisory mode against production traffic before
// letting it act.
func Advisory() AdaptiveOption {
	return func(a *adaptiveOptions) { a.advisory = true }
}

// WithAdaptive closes the adaptation loop: a per-node engine samples
// the runtime signals latent in the stack (loss estimated from RP2P
// retransmissions, ack RTT, consensus latency, relay fan-out, delivery
// throughput), evaluates p, and — after hysteresis and cooldown —
// drives ChangeProtocolAll, so the cluster converges to the protocol
// that fits its current environment. Every decision is published as an
// Advice event (Node.Advise, Subscribe with Advice); with the Advisory
// option decisions are published but never acted on.
//
// One engine runs per Cluster — in a multi-process deployment that is
// one per node, each deciding from its local registry; concurrent
// initiations converge exactly like concurrent manual ChangeProtocol
// calls do. See docs/ADAPTIVE.md.
func WithAdaptive(p AdaptivePolicy, opts ...AdaptiveOption) Option {
	return func(o *options) {
		a := &adaptiveOptions{policy: p}
		for _, opt := range opts {
			opt(a)
		}
		o.adaptive = a
	}
}

// Advice is one adaptation decision: the switch the engine performed
// (Acted true), or — in advisory mode — the switch it would have
// performed. Decisions that merely confirm the current protocol are
// not emitted.
type Advice struct {
	At time.Time
	// Policy is the deciding policy's name.
	Policy string
	// Current is the protocol the decision was made against; Target is
	// the protocol the policy wants. In advisory mode Current follows
	// the advice trail, so the stream mirrors the switch sequence an
	// active engine would have produced.
	Current string
	Target  string
	// Reason is the policy's operator-facing explanation.
	Reason string
	// Acted reports whether the engine performed the switch.
	Acted bool

	// The signals behind the decision.
	Loss             float64       // estimated loss (retransmit ratio)
	AckRTT           time.Duration // smoothed RP2P ack round-trip time
	ConsensusLatency time.Duration // smoothed propose-to-decide latency
	RelayFanout      float64       // rbcast relays per received record
	DeliveryRate     float64       // totally-ordered deliveries per second
}

func publicAdvice(a policy.Advice) Advice {
	return Advice{
		At: a.At, Policy: a.Policy, Current: a.Current, Target: a.Target,
		Reason: a.Reason, Acted: a.Acted,
		Loss:             a.Signals.RetransmitRatio,
		AckRTT:           a.Signals.AckRTT,
		ConsensusLatency: a.Signals.ConsensusLatency,
		RelayFanout:      a.Signals.RelayFanout,
		DeliveryRate:     a.Signals.DeliveryRate,
	}
}

// Advise returns the engine's most recent adaptation decision; the
// zero Advice (At.IsZero()) when none has been emitted yet, and
// ErrNoAdaptive when the cluster was built without WithAdaptive.
func (n *Node) Advise() (Advice, error) {
	if err := n.c.check(n.id); err != nil {
		return Advice{}, err
	}
	if n.c.engine == nil {
		return Advice{}, fmt.Errorf("%w: enable it with WithAdaptive", ErrNoAdaptive)
	}
	last, ok := n.c.engine.Last()
	if !ok {
		return Advice{}, nil
	}
	return publicAdvice(last), nil
}

// startAdaptive wires and starts the adaptation engine. Called at the
// end of New, once every local stack runs.
func (c *Cluster) startAdaptive(a *adaptiveOptions) {
	act := func(target, reason string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := c.ChangeProtocolAll(ctx, target)
		return err
	}
	if vclock.IsVirtual(c.clock) {
		// Under a virtual clock the engine ticks on the clock owner's
		// goroutine, and a blocking ChangeProtocolAll would deadlock: the
		// switch cannot complete until the clock steps again. Initiate
		// asynchronously instead — the switch propagates through the
		// following virtual-time events exactly like a manual
		// Cluster.ChangeProtocol.
		act = func(target, reason string) error {
			var initiator int
			found := false
			for _, s := range c.localSlots() {
				if s.st.Running() {
					initiator, found = s.id, true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: no local running stack", ErrNotRunning)
			}
			return c.ChangeProtocol(initiator, target)
		}
	}
	cfg := policy.Config{
		Policy:   a.policy,
		Interval: a.interval,
		Confirm:  a.confirm,
		Cooldown: a.cooldown,
		Advisory: a.advisory,
		Clock:    c.clock,
		Sample:   c.sampleSignals(),
		Act:      act,
		OnAdvice: func(adv policy.Advice) { c.publishAdvice(publicAdvice(adv)) },
	}
	c.engine = policy.New(cfg)
	c.engine.Start()
}

// sampleSignals returns the engine's sampler: counter deltas between
// consecutive samples become windowed rates, gauges are read directly,
// and the installed protocol comes from the lowest running local
// stack's status. The registry is process-wide, so in-process
// simulations aggregate all local stacks — the granularity a
// group-wide switch decision wants.
func (c *Cluster) sampleSignals() func() (policy.Signals, bool) {
	var (
		prev   map[string]uint64
		prevAt time.Time
	)
	return func() (policy.Signals, bool) {
		var probe *Node
		for _, s := range c.localSlots() {
			if s.st.Running() {
				probe = &Node{c: c, id: s.id}
				break
			}
		}
		if probe == nil {
			return policy.Signals{}, false
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st, err := probe.Status(ctx)
		cancel()
		if err != nil {
			return policy.Signals{}, false
		}
		cur := metrics.Counters()
		now := c.clock.Now()
		defer func() { prev, prevAt = cur, now }()
		if prev == nil {
			return policy.Signals{}, false // first round establishes the baseline
		}
		window := now.Sub(prevAt)
		if window <= 0 {
			return policy.Signals{}, false
		}
		delta := func(name string) float64 { return float64(cur[name] - prev[name]) }
		gauges := metrics.Gauges()
		sent := delta("rp2p.packets_sent")
		received := delta("rbcast.records_received")
		s := policy.Signals{
			Protocol:         st.Protocol,
			Interval:         window,
			PacketsSent:      sent,
			AckRTT:           time.Duration(gauges["rp2p.ack_rtt_us"]) * time.Microsecond,
			ConsensusLatency: time.Duration(gauges["abcast.consensus_latency_us"]) * time.Microsecond,
			DeliveryRate:     delta("core.deliveries") / window.Seconds(),
		}
		if sent > 0 {
			s.RetransmitRatio = delta("rp2p.retransmits") / sent
		}
		if received > 0 {
			s.RelayFanout = delta("rbcast.records_relayed") / received
		}
		return s, true
	}
}

// publishAdvice fans one advice event out to every local slot's
// subscriptions (the engine decides for the whole group, so every
// locally hosted member observes the same stream).
func (c *Cluster) publishAdvice(a Advice) {
	for _, s := range c.localSlots() {
		s.publishAdvice(c, a)
	}
}

// SetLoss changes the packet loss probability of the running network:
// the built-in simulated LAN's loss model, or — over WithTransport —
// the transport's, when it implements transport.Shaper (the Faulty
// decorator does). ErrUnsupported otherwise. Scenario timelines use
// these mutators to reshape the environment mid-run.
func (c *Cluster) SetLoss(p float64) error {
	if c.net != nil {
		c.net.Update(func(cfg *simnet.Config) { cfg.LossRate = p })
		return nil
	}
	if sh, ok := c.tr.(transport.Shaper); ok {
		sh.SetLoss(p)
		return nil
	}
	return fmt.Errorf("%w: runtime loss shaping needs the simulated network or a transport.Shaper", ErrUnsupported)
}

// SetDelay changes the one-way network delay at runtime (the simulated
// LAN's base latency, or a transport.Shaper's fixed delay).
// ErrUnsupported when neither is available.
func (c *Cluster) SetDelay(d time.Duration) error {
	if c.net != nil {
		c.net.Update(func(cfg *simnet.Config) { cfg.BaseLatency = d })
		return nil
	}
	if sh, ok := c.tr.(transport.Shaper); ok {
		sh.SetDelay(d)
		return nil
	}
	return fmt.Errorf("%w: runtime delay shaping needs the simulated network or a transport.Shaper", ErrUnsupported)
}

// SetJitter changes the uniform random delay bound at runtime (the
// simulated LAN's jitter, or a transport.Shaper's). ErrUnsupported
// when neither is available.
func (c *Cluster) SetJitter(j time.Duration) error {
	if c.net != nil {
		c.net.Update(func(cfg *simnet.Config) { cfg.Jitter = j })
		return nil
	}
	if sh, ok := c.tr.(transport.Shaper); ok {
		sh.SetJitter(j)
		return nil
	}
	return fmt.Errorf("%w: runtime jitter shaping needs the simulated network or a transport.Shaper", ErrUnsupported)
}
