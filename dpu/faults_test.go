package dpu_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/dpu"
	"repro/internal/metrics"
)

// TestCorruptionToleratedEndToEnd drives a cluster under 5% byte-level
// corruption: the per-frame checksum rejects every mangled datagram
// (wire.frames_rejected grows), rp2p retransmits cover the loss, and
// the group still delivers everything exactly once in total order.
func TestCorruptionToleratedEndToEnd(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(31), dpu.WithFaults())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetCorrupt(0.05); err != nil {
		t.Fatal(err)
	}

	rejectedBefore := metrics.Counters()["wire.frames_rejected"]
	nodes := make(map[int]*dpu.Node)
	cols := make(map[int]*collector)
	for i := 0; i < 3; i++ {
		n, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		cols[i] = collectOn(t, n)
	}
	if err := nodes[0].Broadcast(ctx, []byte("anchor")); err != nil {
		t.Fatal(err)
	}
	waitForMarker(t, cols, "0:anchor")
	const post = 60
	for k := 0; k < post; k++ {
		if err := nodes[k%3].Broadcast(ctx, []byte(fmt.Sprintf("m-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitSuffixAgreement(t, cols, "0:anchor", post+1)

	st, err := c.FaultStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupted == 0 {
		t.Fatal("corruption rate 0.05 never fired")
	}
	rejected := metrics.Counters()["wire.frames_rejected"] - rejectedBefore
	if rejected == 0 {
		t.Fatalf("no frames rejected despite %d corruptions", st.Corrupted)
	}
}

// TestFaultSurfaceRequiresWithFaults: without the decorator the
// adversarial mutators report ErrUnsupported instead of silently doing
// nothing.
func TestFaultSurfaceRequiresWithFaults(t *testing.T) {
	c, err := dpu.New(2, dpu.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetCorrupt(0.1); !errors.Is(err, dpu.ErrUnsupported) {
		t.Fatalf("SetCorrupt without WithFaults: %v, want ErrUnsupported", err)
	}
	if err := c.PartitionOneWay(0, 1); !errors.Is(err, dpu.ErrUnsupported) {
		t.Fatalf("PartitionOneWay without WithFaults: %v, want ErrUnsupported", err)
	}
	if _, err := c.FaultStats(); !errors.Is(err, dpu.ErrUnsupported) {
		t.Fatalf("FaultStats without WithFaults: %v, want ErrUnsupported", err)
	}
}

// TestOneWayPartitionAndHeal: an asymmetric cut blocks exactly one
// direction (the decorator counts the blocked datagrams) and healing
// restores agreement.
func TestOneWayPartitionAndHeal(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(37), dpu.WithFaults())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PartitionOneWay(0, 99); !errors.Is(err, dpu.ErrOutOfRange) {
		t.Fatalf("PartitionOneWay out of range: %v, want ErrOutOfRange", err)
	}

	nodes := make(map[int]*dpu.Node)
	cols := make(map[int]*collector)
	for i := 0; i < 3; i++ {
		n, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		cols[i] = collectOn(t, n)
	}
	if err := c.PartitionOneWay(0, 1); err != nil {
		t.Fatal(err)
	}
	// Traffic flows around and through the cut (0→2, 2→1 remain); the
	// group keeps agreeing because rp2p acks from 1→0 still arrive and
	// rbcast relays cover the missing direction.
	if err := nodes[2].Broadcast(ctx, []byte("during-cut")); err != nil {
		t.Fatal(err)
	}
	waitSuffixAgreement(t, cols, "2:during-cut", 1)

	if err := c.HealOneWay(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Broadcast(ctx, []byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	waitSuffixAgreement(t, cols, "0:after-heal", 1)

	st, err := c.FaultStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocked == 0 {
		t.Fatal("the one-way cut never blocked a datagram")
	}
}
