package dpu_test

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

// collector drains one stack's delivery stream into an ordered log.
type collector struct {
	mu  sync.Mutex
	seq []string
}

func (col *collector) run(sub *dpu.Subscription) {
	for d := range sub.Deliveries() {
		col.mu.Lock()
		col.seq = append(col.seq, fmt.Sprintf("%d:%s", d.Origin, d.Data))
		col.mu.Unlock()
	}
}

func (col *collector) snapshot() []string {
	col.mu.Lock()
	defer col.mu.Unlock()
	return append([]string(nil), col.seq...)
}

// suffixFrom returns the slice of seq starting at the first occurrence
// of marker (nil when the marker has not been delivered).
func suffixFrom(seq []string, marker string) []string {
	for i, s := range seq {
		if s == marker {
			return seq[i:]
		}
	}
	return nil
}

// waitForMarker blocks until every collector has delivered the marker,
// so messages broadcast afterwards are ordered strictly behind it.
func waitForMarker(t *testing.T, cols map[int]*collector, marker string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, col := range cols {
			if suffixFrom(col.snapshot(), marker) == nil {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for marker %q", marker)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func digestOf(seq []string) string {
	h := sha256.New()
	for _, s := range seq {
		fmt.Fprintln(h, s)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// collectOn subscribes a Block-policy collector on the node.
func collectOn(t *testing.T, n *dpu.Node) *collector {
	t.Helper()
	sub, err := n.Subscribe(dpu.SubscribeOptions{Deliveries: true, Buffer: 4096, Policy: dpu.Block})
	if err != nil {
		t.Fatal(err)
	}
	col := &collector{}
	go col.run(sub)
	return col
}

// waitSuffixAgreement waits until every collector has delivered a
// suffix starting at marker containing want entries, then asserts the
// suffixes are identical (sequence digests).
func waitSuffixAgreement(t *testing.T, cols map[int]*collector, marker string, want int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, col := range cols {
			if len(suffixFrom(col.snapshot(), marker)) < want {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for id, col := range cols {
				t.Logf("stack %d: suffix %d of %d", id, len(suffixFrom(col.snapshot(), marker)), want)
			}
			t.Fatal("timed out waiting for suffix agreement")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var refID int
	var ref []string
	for id, col := range cols {
		suffix := suffixFrom(col.snapshot(), marker)[:want]
		if ref == nil {
			refID, ref = id, suffix
			continue
		}
		if digestOf(suffix) != digestOf(ref) {
			t.Fatalf("stack %d suffix digest %s != stack %d digest %s\n%v\nvs\n%v",
				id, digestOf(suffix), refID, digestOf(ref), suffix, ref)
		}
	}
}

// TestAddNodeDeliversSameSuffix is the elastic-membership acceptance
// scenario: a node added at runtime delivers the exact totally-ordered
// suffix the founding members deliver, verified by sequence digests —
// while traffic keeps flowing through the join.
func TestAddNodeDeliversSameSuffix(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(41), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cols := make(map[int]*collector)
	nodes := make(map[int]*dpu.Node)
	for i := 0; i < 3; i++ {
		n, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		cols[i] = collectOn(t, n)
	}
	// Pre-join traffic the newcomer must NOT be required to deliver.
	for k := 0; k < 30; k++ {
		if err := nodes[k%3].Broadcast(ctx, []byte(fmt.Sprintf("pre-%d", k))); err != nil {
			t.Fatal(err)
		}
	}

	jctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	joiner, err := c.AddNode(jctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := joiner.Index(); got != 3 {
		t.Fatalf("joiner id %d, want 3", got)
	}
	nodes[3] = joiner
	cols[3] = collectOn(t, joiner)

	// Post-join traffic from everyone, including the newcomer, anchored
	// by a marker broadcast after the join commit.
	marker := "0:anchor"
	if err := nodes[0].Broadcast(ctx, []byte("anchor")); err != nil {
		t.Fatal(err)
	}
	waitForMarker(t, cols, marker)
	const post = 40
	for k := 0; k < post; k++ {
		if err := nodes[k%4].Broadcast(ctx, []byte(fmt.Sprintf("post-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitSuffixAgreement(t, cols, marker, post+1)

	// The three founders must additionally agree on the FULL sequence.
	full := map[int]*collector{0: cols[0], 1: cols[1], 2: cols[2]}
	first := cols[0].snapshot()[0]
	waitSuffixAgreement(t, full, first, 30+post+1)
}

// TestAutoEvictInstallsIdenticalViews crashes a member while a protocol
// switch is in flight: the failure detector's suspicion is turned into
// an ordered eviction (WithAutoEvict), and every survivor installs the
// identical view — with service continuing on the new protocol.
func TestAutoEvictInstallsIdenticalViews(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(42), dpu.WithMembership(), dpu.WithAutoEvict())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	nodes := make([]*dpu.Node, 3)
	subs := make([]*dpu.Subscription, 3)
	for i := 0; i < 3; i++ {
		if nodes[i], err = c.Node(i); err != nil {
			t.Fatal(err)
		}
		if subs[i], err = nodes[i].Subscribe(dpu.SubscribeOptions{Views: true, Buffer: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[2].Crash(); err != nil {
		t.Fatal(err)
	}
	// Concurrent protocol switch while the eviction is being proposed.
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if _, err := nodes[0].ChangeProtocol(sctx, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}

	views := make([]dpu.View, 2)
	for _, i := range []int{0, 1} {
		select {
		case v := <-subs[i].Views():
			views[i] = v
		case <-time.After(timeout):
			t.Fatalf("stack %d: no eviction view", i)
		}
	}
	if fmt.Sprint(views[0]) != fmt.Sprint(views[1]) {
		t.Fatalf("divergent views: %+v vs %+v", views[0], views[1])
	}
	if views[0].ID != 1 || len(views[0].Members) != 2 {
		t.Fatalf("eviction view %+v", views[0])
	}
	for _, m := range views[0].Members {
		if m == 2 {
			t.Fatalf("crashed member still in view %+v", views[0])
		}
	}
	// Service continues for the survivors on the new protocol.
	cols := map[int]*collector{0: collectOn(t, nodes[0]), 1: collectOn(t, nodes[1])}
	if err := nodes[1].Broadcast(ctx, []byte("after-evict")); err != nil {
		t.Fatal(err)
	}
	waitSuffixAgreement(t, cols, "1:after-evict", 1)
	st, err := nodes[0].Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol != dpu.ProtocolSequencer || len(st.Members) != 2 {
		t.Fatalf("survivor status %+v", st)
	}
}

// TestEvictConfirmed exercises the confirmed eviction path: Evict
// blocks until the view change commits, survivors agree, and the
// evicted (still live) member is halted after observing its own
// removal.
func TestEvictConfirmed(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(43), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	ectx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	v, err := n0.Evict(ectx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 1 || len(v.Members) != 2 {
		t.Fatalf("eviction view %+v", v)
	}
	// Evicting an absent member commits as a no-op with the same view.
	v2, err := n0.Evict(ectx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v.ID || len(v2.Members) != len(v.Members) {
		t.Fatalf("no-op eviction view %+v, want %+v", v2, v)
	}
	// The evicted stack halts once its final view is published.
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.Node(1); errors.Is(err, dpu.ErrNotRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted stack 1 still accepts operations")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJoinDuringProtocolSwitch races AddNode against an in-flight
// ChangeProtocolAll: whatever order the two commits take in the total
// order, the joiner must land in a coherent epoch — converging to the
// founders' protocol and view — and the post-anchor suffix must be
// identical everywhere.
func TestJoinDuringProtocolSwitch(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(44), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cols := make(map[int]*collector)
	nodes := make(map[int]*dpu.Node)
	for i := 0; i < 3; i++ {
		n, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		cols[i] = collectOn(t, n)
	}
	for k := 0; k < 20; k++ {
		if err := nodes[k%3].Broadcast(ctx, []byte(fmt.Sprintf("pre-%d", k))); err != nil {
			t.Fatal(err)
		}
	}

	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	switchDone := make(chan error, 1)
	go func() {
		_, err := c.ChangeProtocolAll(sctx, dpu.ProtocolToken)
		switchDone <- err
	}()
	joiner, err := c.AddNode(sctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-switchDone; err != nil {
		t.Fatal(err)
	}
	nodes[3] = joiner
	cols[3] = collectOn(t, joiner)

	// The joiner and the founders converge on the same protocol, epoch
	// and view.
	deadline := time.Now().Add(timeout)
	for {
		js, err := joiner.Status(sctx)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := nodes[0].Status(sctx)
		if err != nil {
			t.Fatal(err)
		}
		if js.Protocol == dpu.ProtocolToken && js.Protocol == fs.Protocol &&
			js.Epoch == fs.Epoch && fmt.Sprint(js.Members) == fmt.Sprint(fs.Members) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never converged: joiner %+v founders %+v", js, fs)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := nodes[1].Broadcast(ctx, []byte("anchor")); err != nil {
		t.Fatal(err)
	}
	waitForMarker(t, cols, "1:anchor")
	const post = 24
	for k := 0; k < post; k++ {
		if err := nodes[k%4].Broadcast(ctx, []byte(fmt.Sprintf("post-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if !t.Failed() {
			return
		}
		for id, nd := range nodes {
			st, err := nd.Status(context.Background())
			t.Logf("stack %d status %+v err %v", id, st, err)
		}
	}()
	waitSuffixAgreement(t, cols, "1:anchor", post+1)
}

// TestSubscribeViewsDuringChurnStorm hammers concurrent Subscribe(Views)
// streams while members join and leave — exercised under -race in CI.
func TestSubscribeViewsDuringChurnStorm(t *testing.T) {
	ctx := context.Background()
	c, err := dpu.New(3, dpu.WithSeed(45), dpu.WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := n0.Subscribe(dpu.SubscribeOptions{Views: true, Buffer: 8})
				if err != nil {
					return // cluster closing
				}
				for i := 0; i < 3; i++ {
					select {
					case <-sub.Views():
					case <-time.After(time.Millisecond):
					}
				}
				sub.Close()
			}
		}()
	}

	// Churn: admit three nodes and evict each right after, while the
	// subscribe storm runs.
	for round := 0; round < 3; round++ {
		jctx, cancel := context.WithTimeout(ctx, timeout)
		node, err := c.AddNode(jctx, "")
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if _, err := n0.Evict(jctx, node.Index()); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	close(stop)
	wg.Wait()

	// The founders still agree after the storm.
	st0, err := n0.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st0.Members) != 3 || st0.ViewID != 6 {
		t.Fatalf("final status %+v, want 3 members after view 6", st0)
	}
}

// TestServeJoinOverRealUDP runs the whole cross-process joiner path in
// one test: a founding cluster over real loopback sockets serves join
// handshakes on TCP, and dpu.Join boots a second, single-stack cluster
// (standing in for a fresh OS process) that lands in the view and
// delivers the same ordered suffix.
func TestServeJoinOverRealUDP(t *testing.T) {
	ctx := context.Background()
	const n = 3
	book := udpBook(t, n)
	endpoints := make(map[int]string, n)
	for a, ep := range book {
		endpoints[int(a)] = ep
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(n, dpu.WithTransport(tr), dpu.WithMembership(), dpu.WithEndpoints(endpoints))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ServeJoin(ln); err != nil {
		t.Fatal(err)
	}

	cols := make(map[int]*collector)
	nodes := make(map[int]*dpu.Node)
	for i := 0; i < n; i++ {
		nd, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		cols[i] = collectOn(t, nd)
	}

	// The "fresh process": its own transport, its own cluster object.
	joinEP := transporttest.ReserveAddrs(t, 1)[0]
	jctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	jc, jn, err := dpu.Join(jctx, ln.Addr().String(), joinEP)
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	if jn.Index() != n {
		t.Fatalf("joiner id %d, want %d", jn.Index(), n)
	}
	jcol := collectOn(t, jn)

	all := map[int]*collector{0: cols[0], 1: cols[1], 2: cols[2], 3: jcol}
	if err := nodes[0].Broadcast(ctx, []byte("anchor")); err != nil {
		t.Fatal(err)
	}
	waitForMarker(t, all, "0:anchor")
	const post = 20
	for k := 0; k < post; k++ {
		sender := nodes[k%n]
		if k%4 == 3 {
			sender = jn
		}
		if err := sender.Broadcast(ctx, []byte(fmt.Sprintf("post-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitSuffixAgreement(t, all, "0:anchor", post+1)

	st, err := jn.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != n+1 {
		t.Fatalf("joiner view %+v, want %d members", st, n+1)
	}

	// Evict a founder over the real transport: the survivors (including
	// the node that joined over the wire) keep agreeing, and the
	// process-level route pruning must not sever anyone still needed.
	ectx, cancel2 := context.WithTimeout(ctx, timeout)
	defer cancel2()
	if _, err := nodes[0].Evict(ectx, 2); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Broadcast(ctx, []byte("post-evict")); err != nil {
		t.Fatal(err)
	}
	survivors := map[int]*collector{0: cols[0], 1: cols[1], 3: jcol}
	waitSuffixAgreement(t, survivors, "1:post-evict", 1)
}
