package dpu

import "errors"

// Sentinel errors returned (possibly wrapped — test with errors.Is) by
// Cluster and Node operations.
var (
	// ErrOutOfRange reports a stack index outside [0, Cluster.N()).
	ErrOutOfRange = errors.New("dpu: stack index out of range")
	// ErrRemoteStack reports an operation on a stack that this process
	// does not host (see WithLocalStacks).
	ErrRemoteStack = errors.New("dpu: stack is not hosted by this process")
	// ErrNotRunning reports an operation on a stack that has crashed or
	// been closed.
	ErrNotRunning = errors.New("dpu: stack is not running")
	// ErrUnknownProtocol reports a ChangeProtocol name that no bundled
	// or registered implementation matches. It is returned immediately,
	// before anything is broadcast to the group.
	ErrUnknownProtocol = errors.New("dpu: unknown protocol")
	// ErrUnsupported reports an operation the cluster's configuration
	// cannot honor — e.g. link faults over an external transport.
	ErrUnsupported = errors.New("dpu: operation not supported by this cluster configuration")
	// ErrNoMembership reports a membership operation (Join, Leave,
	// Evict, AddNode, ServeJoin) on a cluster built without the
	// group-membership module. Enable it with WithMembership.
	ErrNoMembership = errors.New("dpu: membership module not enabled")
	// ErrNoAdaptive reports an adaptation operation (Node.Advise,
	// Subscribe with Advice) on a cluster built without the adaptation
	// engine. Enable it with WithAdaptive.
	ErrNoAdaptive = errors.New("dpu: adaptive engine not enabled")
	// ErrStillRunning reports a Restart of a stack that has not crashed
	// or been evicted — only a retired slot can be revived.
	ErrStillRunning = errors.New("dpu: stack is still running")
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = errors.New("dpu: cluster closed")
)
