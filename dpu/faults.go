package dpu

import (
	"fmt"

	"repro/internal/transport"
)

// injector resolves the adversarial fault surface: the WithFaults
// decorator when the cluster was built with one, else an externally
// supplied transport that implements transport.FaultInjector itself.
func (c *Cluster) injector() (transport.FaultInjector, error) {
	if c.faulty != nil {
		return c.faulty, nil
	}
	if fi, ok := c.tr.(transport.FaultInjector); ok {
		return fi, nil
	}
	return nil, fmt.Errorf("%w: adversarial fault injection needs WithFaults (or a transport.FaultInjector transport)", ErrUnsupported)
}

// SetCorrupt changes the probability, in [0, 1], that a datagram has
// 1–3 of its bytes flipped in flight. The per-frame checksum
// (internal/wire) turns each corruption into a counted drop
// (wire.frames_rejected) at the receiver, so the layers above see loss,
// never garbage. Requires WithFaults; ErrUnsupported otherwise.
func (c *Cluster) SetCorrupt(p float64) error {
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.SetCorrupt(p)
	return nil
}

// SetReorder changes the probability, in [0, 1], that a datagram is
// held back long enough for later sends to overtake it. Requires
// WithFaults; ErrUnsupported otherwise.
func (c *Cluster) SetReorder(p float64) error {
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.SetReorder(p)
	return nil
}

// SetBurst changes the probability, in [0, 1], that a datagram opens a
// correlated loss burst swallowing length datagrams in total (length
// <= 0 keeps the current burst length). Requires WithFaults;
// ErrUnsupported otherwise.
func (c *Cluster) SetBurst(p float64, length int) error {
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.SetBurst(p, length)
	return nil
}

// PartitionOneWay blocks datagrams from stack a to stack b while the
// reverse direction keeps flowing — the asymmetric partition that
// drives a failure detector's hardest cases (a hears b, b suspects a).
// Requires WithFaults; ErrUnsupported otherwise.
func (c *Cluster) PartitionOneWay(a, b int) error {
	if err := c.checkPair(a, b); err != nil {
		return err
	}
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.CutOneWay(transport.Addr(a), transport.Addr(b))
	return nil
}

// HealOneWay restores the directed link cut by PartitionOneWay.
func (c *Cluster) HealOneWay(a, b int) error {
	if err := c.checkPair(a, b); err != nil {
		return err
	}
	fi, err := c.injector()
	if err != nil {
		return err
	}
	fi.HealOneWay(transport.Addr(a), transport.Addr(b))
	return nil
}

// checkPair validates two stack ids against the cluster's id space
// (without requiring either to be locally hosted or running: one-way
// cuts of remote or already-crashed members are legitimate).
func (c *Cluster) checkPair(a, b int) error {
	size := c.N()
	if a < 0 || a >= size || b < 0 || b >= size {
		return fmt.Errorf("%w: link %d-%d not in [0,%d)", ErrOutOfRange, a, b, size)
	}
	return nil
}

// FaultStats snapshots the WithFaults decorator's counters (zero stats
// and ErrUnsupported when the cluster was built without it).
func (c *Cluster) FaultStats() (transport.FaultStats, error) {
	if c.faulty == nil {
		return transport.FaultStats{}, fmt.Errorf("%w: fault stats need WithFaults", ErrUnsupported)
	}
	return c.faulty.Stats(), nil
}
