package dpu_test

// End-to-end coverage for WithExecutorPool combined with the batched
// UDP backend: the full protocol stack, over real loopback sockets,
// with all stacks' executors multiplexed onto a shared worker pool.
// The pool must be invisible in the results — same total order, same
// exactly-once delivery, live protocol switch included — while the
// transport stats prove the syscall batching actually engaged.

import (
	"fmt"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/transport"
)

func TestClusterWithExecutorPoolOverBatchedUDP(t *testing.T) {
	const n, msgs = 3, 60
	tr, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(n, dpu.WithTransport(tr), dpu.WithExecutorPool(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	send := func(from, count int) {
		for i := 0; i < count; i++ {
			if err := c.Broadcast(from, []byte(fmt.Sprintf("p-%d-%d", from, i))); err != nil {
				t.Fatal(err)
			}
			from = (from + 1) % n
		}
	}
	send(0, msgs/2)
	if err := c.ChangeProtocol(1, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}
	send(1, msgs-msgs/2)

	for i := 0; i < n; i++ {
		select {
		case ev := <-c.Switches(i):
			if ev.Protocol != dpu.ProtocolSequencer {
				t.Fatalf("stack %d switched to %q", i, ev.Protocol)
			}
		case <-time.After(timeout):
			t.Fatalf("stack %d never switched", i)
		}
	}

	sequences := make([][]string, n)
	for i := 0; i < n; i++ {
		for _, d := range drain(t, c, i, msgs) {
			sequences[i] = append(sequences[i], fmt.Sprintf("%d:%s", d.Origin, d.Data))
		}
	}
	for i := 1; i < n; i++ {
		if len(sequences[i]) != len(sequences[0]) {
			t.Fatalf("stack %d delivered %d, stack 0 delivered %d", i, len(sequences[i]), len(sequences[0]))
		}
		for k := range sequences[0] {
			if sequences[i][k] != sequences[0][k] {
				t.Fatalf("order divergence at %d: stack0=%s stack%d=%s", k, sequences[0][k], i, sequences[i][k])
			}
		}
	}
	seen := map[string]bool{}
	for _, s := range sequences[0] {
		if seen[s] {
			t.Fatalf("duplicate delivery %s", s)
		}
		seen[s] = true
	}
	if len(seen) != msgs {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), msgs)
	}

	if transport.BatchSyscallsAvailable() {
		st := tr.Stats()
		if st.SendCalls == 0 || st.SendCalls >= st.Sent {
			t.Errorf("send batching idle: %d syscalls for %d datagrams", st.SendCalls, st.Sent)
		}
		if st.RecvCalls == 0 || st.RecvCalls >= st.Delivered {
			t.Errorf("recv batching idle: %d syscalls for %d datagrams", st.RecvCalls, st.Delivered)
		}
	}
}

// TestExecutorPoolWithFaultyBatchedUDP layers the fault decorator over
// the batched backend under the pool — the adversarial configuration
// every piece of new machinery has to survive together. Loss forces
// RP2P retransmissions through the batch queues.
func TestExecutorPoolWithFaultyBatchedUDP(t *testing.T) {
	const n, msgs = 3, 30
	inner, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.Faulty(inner, transport.FaultConfig{Seed: 23, LossRate: 0.1})
	c, err := dpu.New(n, dpu.WithTransport(tr), dpu.WithExecutorPool(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%n, []byte(fmt.Sprintf("pf-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ref := drain(t, c, 0, msgs)
	for i := 1; i < n; i++ {
		got := drain(t, c, i, msgs)
		for k := range ref {
			a := fmt.Sprintf("%d:%s", ref[k].Origin, ref[k].Data)
			b := fmt.Sprintf("%d:%s", got[k].Origin, got[k].Data)
			if a != b {
				t.Fatalf("order divergence at %d: stack0=%s stack%d=%s", k, a, i, b)
			}
		}
	}
	if st := tr.Stats(); st.Dropped == 0 {
		t.Fatalf("loss injection idle: %+v", st)
	}
}

// TestExecutorPoolOverSimnet runs the pooled scheduler over the
// deterministic in-process fabric: batching never engages there (by
// design — digest stability), but the pool must still deliver the same
// totally-ordered, exactly-once stream.
func TestExecutorPoolOverSimnet(t *testing.T) {
	const n, msgs = 4, 40
	c, err := dpu.New(n, dpu.WithSeed(42), dpu.WithExecutorPool(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%n, []byte(fmt.Sprintf("sim-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ref := drain(t, c, 0, msgs)
	for i := 1; i < n; i++ {
		got := drain(t, c, i, msgs)
		for k := range ref {
			a := fmt.Sprintf("%d:%s", ref[k].Origin, ref[k].Data)
			b := fmt.Sprintf("%d:%s", got[k].Origin, got[k].Data)
			if a != b {
				t.Fatalf("order divergence at %d: stack0=%s stack%d=%s", k, a, i, b)
			}
		}
	}
}
