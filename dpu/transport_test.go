package dpu_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/dpu"
	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

// udpBook reserves n loopback ports and returns a transport address
// book over them.
func udpBook(t *testing.T, n int) map[transport.Addr]string {
	t.Helper()
	book := make(map[transport.Addr]string, n)
	for i, a := range transporttest.ReserveAddrs(t, n) {
		book[transport.Addr(i)] = a
	}
	return book
}

// TestClusterOverRealUDP runs the full stack over real loopback
// sockets: messages broadcast before, during and after a live
// ChangeProtocol must come out exactly once, in the same total order,
// on every stack.
func TestClusterOverRealUDP(t *testing.T) {
	const n, msgs = 3, 60
	tr, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dpu.New(n, dpu.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	send := func(from, count int) {
		for i := 0; i < count; i++ {
			if err := c.Broadcast(from, []byte(fmt.Sprintf("u-%d-%d", from, i))); err != nil {
				t.Fatal(err)
			}
			from = (from + 1) % n
		}
	}
	send(0, msgs/2)
	if err := c.ChangeProtocol(1, dpu.ProtocolSequencer); err != nil {
		t.Fatal(err)
	}
	send(1, msgs-msgs/2)

	for i := 0; i < n; i++ {
		select {
		case ev := <-c.Switches(i):
			if ev.Protocol != dpu.ProtocolSequencer {
				t.Fatalf("stack %d switched to %q", i, ev.Protocol)
			}
		case <-time.After(timeout):
			t.Fatalf("stack %d never switched", i)
		}
	}

	sequences := make([][]string, n)
	for i := 0; i < n; i++ {
		for _, d := range drain(t, c, i, msgs) {
			sequences[i] = append(sequences[i], fmt.Sprintf("%d:%s", d.Origin, d.Data))
		}
	}
	for i := 1; i < n; i++ {
		if len(sequences[i]) != len(sequences[0]) {
			t.Fatalf("stack %d delivered %d, stack 0 delivered %d", i, len(sequences[i]), len(sequences[0]))
		}
		for k := range sequences[0] {
			if sequences[i][k] != sequences[0][k] {
				t.Fatalf("order divergence at %d: stack0=%s stack%d=%s", k, sequences[0][k], i, sequences[i][k])
			}
		}
	}
	// Exactly once: no duplicates beyond the expected count.
	seen := map[string]bool{}
	for _, s := range sequences[0] {
		if seen[s] {
			t.Fatalf("duplicate delivery %s", s)
		}
		seen[s] = true
	}
	if len(seen) != msgs {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), msgs)
	}
}

// TestClusterOverLossyUDP layers simnet-style loss over the real
// sockets; RP2P's retransmission must still get every message through.
func TestClusterOverLossyUDP(t *testing.T) {
	const n, msgs = 3, 30
	inner, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.Faulty(inner, transport.FaultConfig{Seed: 11, LossRate: 0.1, DupRate: 0.05})
	c, err := dpu.New(n, dpu.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%n, []byte(fmt.Sprintf("lossy-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ref := drain(t, c, 0, msgs)
	for i := 1; i < n; i++ {
		got := drain(t, c, i, msgs)
		for k := range ref {
			a := fmt.Sprintf("%d:%s", ref[k].Origin, ref[k].Data)
			b := fmt.Sprintf("%d:%s", got[k].Origin, got[k].Data)
			if a != b {
				t.Fatalf("order divergence at %d: stack0=%s stack%d=%s", k, a, i, b)
			}
		}
	}
	if st := tr.Stats(); st.Dropped == 0 {
		t.Fatalf("loss injection idle: %+v", st)
	}
}

// TestBindFailureSurfaces pins down that a transport bind conflict —
// which the udp module can only record, not return — comes back as an
// error from dpu.New instead of yielding a cluster that silently drops
// all traffic.
func TestBindFailureSurfaces(t *testing.T) {
	book := udpBook(t, 2)
	ua, err := net.ResolveUDPAddr("udp", book[0])
	if err != nil {
		t.Fatal(err)
	}
	squatter, err := net.ListenUDP("udp", ua)
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	tr, err := transport.NewUDP(transport.UDPConfig{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if c, err := dpu.New(2, dpu.WithTransport(tr)); err == nil {
		c.Close()
		t.Fatal("bind conflict did not surface from dpu.New")
	}
}

// TestLocalStacksValidation covers the multi-process configuration
// surface without spawning processes.
func TestLocalStacksValidation(t *testing.T) {
	tr, err := transport.NewUDP(transport.UDPConfig{Book: udpBook(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dpu.New(3, dpu.WithTransport(tr), dpu.WithLocalStacks(5)); err == nil {
		t.Fatal("out-of-range local stack accepted")
	}
	c, err := dpu.New(3, dpu.WithTransport(tr), dpu.WithLocalStacks(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(0, []byte("x")); err == nil {
		t.Fatal("broadcast from remote stack accepted")
	}
	if c.Stack(0) != nil || c.Stack(1) == nil {
		t.Fatal("local/remote stack exposure wrong")
	}
	if c.Deliveries(0) != nil || c.Deliveries(1) == nil {
		t.Fatal("local/remote delivery channels wrong")
	}
	if err := c.Broadcast(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
}
