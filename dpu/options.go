package dpu

import (
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/kernel"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vclock"
)

type options struct {
	protocol       string
	net            simnet.Config
	transport      transport.Transport
	local          []int
	grace          time.Duration
	membership     bool
	autoEvict      bool
	endpoints      map[int]string
	buffer         int
	maxOutstanding int
	batchDelay     time.Duration
	batchBytes     int
	extraImpls     []abcast.Impl
	consVariants   []consensus.Config
	tracer         kernel.Tracer
	adaptive       *adaptiveOptions
	clock          vclock.Clock
	fd             fd.Config
	faults         bool
	joinTimeout    time.Duration
	joinRetry      joinRetryConfig
	poolSize       int
	pooled         bool
}

// joinRetryConfig is the resolved WithJoinRetry configuration: up to
// attempts handshake tries, with capped exponential backoff between
// them. attempts 1 means a single try (no retry), the default.
type joinRetryConfig struct {
	attempts int
	base     time.Duration
	max      time.Duration
}

// Option configures New.
type Option func(*options)

// WithInitialProtocol selects the protocol installed at epoch 0
// (default ProtocolCT).
func WithInitialProtocol(name string) Option {
	return func(o *options) { o.protocol = name }
}

// WithSeed makes the simulated network's fates reproducible.
func WithSeed(seed int64) Option {
	return func(o *options) { o.net.Seed = seed }
}

// WithLatency sets the one-way network latency (default 100µs) and
// jitter (default latency/2).
func WithLatency(base, jitter time.Duration) Option {
	return func(o *options) { o.net.BaseLatency, o.net.Jitter = base, jitter }
}

// WithLoss sets the packet loss probability in [0,1].
func WithLoss(p float64) Option {
	return func(o *options) { o.net.LossRate = p }
}

// WithBandwidth models a shared medium of the given bits per second.
func WithBandwidth(bps float64) Option {
	return func(o *options) { o.net.BandwidthBps = bps }
}

// WithGrace sets how long a replaced protocol module keeps draining
// before it is removed (default 500ms).
func WithGrace(d time.Duration) Option {
	return func(o *options) { o.grace = d }
}

// WithMembership adds the group-membership module (GM in Figure 4) on
// top of the replaceable atomic broadcast. With it enabled, GM views
// drive every layer: a committed view change reconfigures rbcast
// destinations, rp2p peer state, fd monitors, consensus quorums and
// transport routes, and the cluster becomes elastic (AddNode,
// Node.Evict, ServeJoin/Join across processes).
func WithMembership() Option {
	return func(o *options) { o.membership = true }
}

// WithAutoEvict makes GM propose an eviction whenever the failure
// detector suspects a member. The proposal is ordered through the
// public atomic broadcast, so every survivor installs the identical
// view; duplicate proposals from several survivors commit as no-ops.
// Requires WithMembership.
func WithAutoEvict() Option {
	return func(o *options) { o.autoEvict = true }
}

// WithEndpoints records the transport endpoint ("host:port") of each
// founding member, so the membership layer can serve joiners a complete
// address book and admit/retire routes as views change. Typically used
// together with WithTransport over real UDP sockets; superfluous over
// the built-in simulated LAN, whose routing is implicit.
func WithEndpoints(eps map[int]string) Option {
	return func(o *options) {
		if o.endpoints == nil {
			o.endpoints = make(map[int]string, len(eps))
		}
		for id, ep := range eps {
			o.endpoints[id] = ep
		}
	}
}

// WithDeliveryBuffer sets the per-stack delivery channel capacity of
// the legacy Deliveries stream (default 8192). When a consumer lags
// behind a full buffer, further deliveries are discarded and counted
// (see Dropped) — the buffer keeps the oldest unread entries.
// Node.Subscribe carries its own buffer and an explicit lag policy
// instead.
func WithDeliveryBuffer(n int) Option {
	return func(o *options) { o.buffer = n }
}

// WithMaxOutstanding bounds the number of a stack's own broadcasts that
// may be in flight — issued through Node.Broadcast but not yet
// delivered back by the total order — before further Node.Broadcast
// calls block (default 1024). This is the backpressure window that
// keeps a fast producer from flooding the replacement layer's
// undelivered set. The legacy Cluster.Broadcast bypasses the window.
func WithMaxOutstanding(n int) Option {
	return func(o *options) { o.maxOutstanding = n }
}

// WithBatching enables sender-side broadcast batching: payloads handed
// to Broadcast accumulate for at most maxDelay (or until their packed
// size reaches maxBytes, whichever comes first) and are atomically
// broadcast as ONE inner message, amortizing one dissemination, one
// consensus slot and one ack cycle over the whole batch. Delivery
// unpacks batches transparently, preserving exactly-once and total
// order — including across a protocol switch, where a batch caught
// undelivered is reissued exactly once through the new epoch.
//
// The tradeoff is latency: a lone broadcast waits up to maxDelay before
// it leaves the sender. Batching is off by default. maxBytes <= 0
// defaults to 32 KiB, and is capped at 48 KiB so a batch always fits
// one real UDP datagram after framing; maxDelay <= 0 with maxBytes > 0
// selects size-driven batching with a 1ms flush deadline. See
// docs/PERFORMANCE.md for guidance.
func WithBatching(maxDelay time.Duration, maxBytes int) Option {
	return func(o *options) { o.batchDelay, o.batchBytes = maxDelay, maxBytes }
}

// WithProtocolImpl registers a custom atomic-broadcast implementation
// so ChangeProtocol can switch to it. See abcast.Impl for the contract.
func WithProtocolImpl(im abcast.Impl) Option {
	return func(o *options) { o.extraImpls = append(o.extraImpls, im) }
}

// WithConsensusVariant registers a CT atomic-broadcast variant that
// runs on its own consensus protocol instance — the paper's
// consensus-replacement extension. implName is the protocol name to
// pass to ChangeProtocol; policy selects the coordinator strategy of
// the new consensus protocol.
func WithConsensusVariant(implName string, policy consensus.CoordPolicy) Option {
	return func(o *options) {
		svc := kernel.ServiceID("consensus/" + implName)
		o.extraImpls = append(o.extraImpls, abcast.CTImplOn(implName, svc))
		o.consVariants = append(o.consVariants, consensus.Config{
			Service:    svc,
			Protocol:   "consensus@" + implName,
			Channel:    "cons@" + implName,
			DecChannel: "cons-dec@" + implName,
			Policy:     policy,
		})
	}
}

// WithTransport runs the cluster over the given datagram fabric
// instead of the built-in simulated LAN — typically a real-socket
// transport built with transport.NewUDP and a static address book, so
// stacks can live in different OS processes or on different hosts (see
// WithLocalStacks and cmd/dpu-sim's -listen/-peers mode).
//
// With an external transport the simulation-only options (WithLatency,
// WithLoss, WithBandwidth) no longer shape the network — real links
// do — and the link-fault methods PartitionLink and HealLink return
// ErrUnsupported; Crash still halts the local stack. Close closes the
// transport. Ownership transfers when New starts wiring stacks: a New
// that fails during the build closes the transport, while a
// configuration error caught before wiring (bad cluster size or local
// stack index, duplicate protocol name) leaves it open for reuse.
func WithTransport(tr transport.Transport) Option {
	return func(o *options) { o.transport = tr }
}

// WithLocalStacks restricts which of the n stacks this process hosts
// (default: all of them). The remaining addresses are expected to be
// served by other processes sharing the same transport address book.
// Cluster methods taking a stack index only accept local stacks, and
// Node handles exist only for local stacks (ErrRemoteStack otherwise).
func WithLocalStacks(ids ...int) Option {
	return func(o *options) { o.local = append(o.local, ids...) }
}

// WithTracer attaches a kernel tracer (e.g. trace.NewCollector()) to
// every stack.
func WithTracer(t kernel.Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// WithClock injects a time source shared by every layer of the cluster
// — kernel timers, simulated-network delivery, failure-detector
// heartbeats, the adaptation engine's sampling ticks and event
// timestamps. The default is the wall clock. Passing a
// vclock.NewVirtual() puts the whole cluster on discrete-event virtual
// time: nothing advances until the owner of the virtual clock steps it,
// which is how internal/scenario runs large groups and long timelines
// deterministically in milliseconds of real time. Requires the built-in
// simulated network (the clock cannot slow down real sockets).
func WithClock(c vclock.Clock) Option {
	return func(o *options) { o.clock = c }
}

// WithFaults wraps the cluster's transport — built-in simulated LAN or
// WithTransport fabric alike — in the transport.Faulty decorator, with
// every rate at zero. The wrap itself is neutral (no RNG draws, no
// copies, synchronous delivery), but it unlocks the adversarial fault
// surface at runtime: Cluster.SetCorrupt, SetReorder, SetBurst,
// PartitionOneWay and HealOneWay. The decorator's fates are seeded from
// WithSeed and its timers run on the injected clock, so scenarios stay
// deterministic under vclock.
func WithFaults() Option {
	return func(o *options) { o.faults = true }
}

// WithJoinTimeout bounds each leg of the TCP join handshake (the
// joiner's dial+exchange in Join, and the per-connection service in
// ServeJoin). The default is 60s. A ctx deadline shorter than the
// timeout wins. d <= 0 keeps the default.
func WithJoinTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.joinTimeout = d
		}
	}
}

// WithJoinRetry makes Join retry a failed handshake up to attempts
// times in total, so a restarting process rides out a briefly-dead
// sponsor. Between tries it backs off exponentially from base, capped
// at max, with seeded jitter (each wait is uniform in [d/2, d)); the
// waits run on the injected clock and abort when ctx is cancelled.
// Only transport-level failures (connection refused, reset, a sponsor
// dying mid-handshake) are retried — a sponsor that answers with a
// refusal fails immediately. attempts < 1 means 1; base <= 0 defaults
// to 100ms; max < base is raised to base.
func WithJoinRetry(attempts int, base, max time.Duration) Option {
	return func(o *options) {
		if attempts < 1 {
			attempts = 1
		}
		if base <= 0 {
			base = 100 * time.Millisecond
		}
		if max < base {
			max = base
		}
		o.joinRetry = joinRetryConfig{attempts: attempts, base: base, max: max}
	}
}

// WithExecutorPool schedules the cluster's stack executors on a shared
// pool of n workers instead of a dedicated goroutine per stack; n <= 0
// means GOMAXPROCS. Per-stack serialization is preserved exactly (one
// worker owns a stack at a time), so module code and event ordering are
// unaffected — the pool changes where stacks run, never how.
//
// Enable it when one process hosts several stacks and has more than one
// core to spend: independent stacks then drain their event batches in
// parallel, which compounds with the batched UDP backend (each parallel
// executor pass ends in its own sendmmsg flush). With a single stack
// per process, or GOMAXPROCS=1, it changes nothing but scheduling
// overhead. The pool is owned by the Cluster and closed by Close, after
// the stacks. See docs/OPERATIONS.md for the kernel.pool_* counters.
func WithExecutorPool(n int) Option {
	return func(o *options) { o.pooled, o.poolSize = true, n }
}

// WithFailureDetector tunes the heartbeat failure detector: interval is
// the heartbeat/check period, timeout the silence threshold before
// suspicion (zero keeps each default). Large simulated groups raise the
// interval so heartbeat traffic does not dominate the event schedule.
func WithFailureDetector(interval, timeout time.Duration) Option {
	return func(o *options) { o.fd.Interval, o.fd.Timeout = interval, timeout }
}
