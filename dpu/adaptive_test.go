package dpu

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// adaptiveTestOpts builds the cluster options shared by the scenario
// tests: a seeded simnet, the sequencer installed (the clean-path
// protocol of the loss-sensitive policy), and a tight engine so the
// tests converge in seconds.
func adaptiveTestOpts(extra ...AdaptiveOption) []Option {
	aopts := append([]AdaptiveOption{
		AdaptiveInterval(20 * time.Millisecond),
		AdaptiveConfirm(2),
		AdaptiveCooldown(250 * time.Millisecond),
	}, extra...)
	return []Option{
		WithSeed(7),
		WithInitialProtocol(ProtocolSequencer),
		WithAdaptive(LossSensitivePolicy(0, 0), aopts...),
	}
}

// pump broadcasts continuously from every node so the loss estimate
// (retransmit ratio) has traffic to measure, until stop is closed.
func pump(t *testing.T, c *Cluster, n int, stop <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		node, err := c.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() { <-stop; cancel() }()
			payload := []byte("adaptive-workload")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := node.Broadcast(ctx, payload); err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	return &wg
}

// TestAdaptiveLossRampSwitchSequence is the acceptance scenario: under
// a scripted loss ramp in simnet, the controller must switch to the
// loss-tolerant protocol during the lossy phase and back to the lean
// one after recovery — the ordered sequence of SwitchEvents is exactly
// [ProtocolCT, ProtocolSequencer].
func TestAdaptiveLossRampSwitchSequence(t *testing.T) {
	c, err := New(3, adaptiveTestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	node0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := node0.Subscribe(SubscribeOptions{Switches: true, Advice: true, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := pump(t, c, 3, stop)
	defer func() { close(stop); wg.Wait() }()

	waitSwitch := func(want string) SwitchEvent {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case ev := <-sub.Switches():
				if ev.Protocol != want {
					t.Fatalf("switched to %s, want %s", ev.Protocol, want)
				}
				return ev
			case <-deadline:
				t.Fatalf("controller never switched to %s", want)
			}
		}
	}

	// Lossy phase: the controller must converge to the loss-tolerant
	// consensus protocol.
	if err := c.SetLoss(0.35); err != nil {
		t.Fatal(err)
	}
	evCT := waitSwitch(ProtocolCT)

	// Recovery: back to the lean sequencer.
	if err := c.SetLoss(0); err != nil {
		t.Fatal(err)
	}
	evSeq := waitSwitch(ProtocolSequencer)
	if evSeq.Epoch <= evCT.Epoch {
		t.Fatalf("switch epochs not ordered: ct=%d seq=%d", evCT.Epoch, evSeq.Epoch)
	}

	// Stable environment: no further switches.
	select {
	case ev := <-sub.Switches():
		t.Fatalf("controller flapped after recovery: %+v", ev)
	case <-time.After(500 * time.Millisecond):
	}

	// The switches were published as acted advice too, in order.
	var targets []string
	for len(targets) < 2 {
		select {
		case a := <-sub.Advice():
			if !a.Acted {
				t.Fatalf("active-mode advice not acted: %+v", a)
			}
			targets = append(targets, a.Target)
		case <-time.After(5 * time.Second):
			t.Fatalf("advice stream incomplete: %v", targets)
		}
	}
	if targets[0] != ProtocolCT || targets[1] != ProtocolSequencer {
		t.Fatalf("advice targets = %v, want [%s %s]", targets, ProtocolCT, ProtocolSequencer)
	}

	// Node.Advise returns the last decision.
	last, err := node0.Advise()
	if err != nil {
		t.Fatal(err)
	}
	if last.Target != ProtocolSequencer || !last.Acted {
		t.Fatalf("Advise = %+v, want acted advice for %s", last, ProtocolSequencer)
	}
}

// TestAdaptiveAdvisoryParity runs the identical loss ramp in advisory
// mode: the advice stream must carry the same ordered targets the
// active controller switches through, with zero actual switches.
func TestAdaptiveAdvisoryParity(t *testing.T) {
	c, err := New(3, adaptiveTestOpts(Advisory())...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	node0, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := node0.Subscribe(SubscribeOptions{Switches: true, Advice: true, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := pump(t, c, 3, stop)
	defer func() { close(stop); wg.Wait() }()

	waitAdvice := func(want string) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case a := <-sub.Advice():
				if a.Acted {
					t.Fatalf("advisory advice marked acted: %+v", a)
				}
				if a.Target != want {
					t.Fatalf("advised %s, want %s", a.Target, want)
				}
				return
			case ev := <-sub.Switches():
				t.Fatalf("advisory mode switched protocols: %+v", ev)
			case <-deadline:
				t.Fatalf("no advice for %s", want)
			}
		}
	}

	if err := c.SetLoss(0.35); err != nil {
		t.Fatal(err)
	}
	waitAdvice(ProtocolCT)
	if err := c.SetLoss(0); err != nil {
		t.Fatal(err)
	}
	waitAdvice(ProtocolSequencer)

	// Zero switches throughout: the installed protocol is untouched.
	select {
	case ev := <-sub.Switches():
		t.Fatalf("advisory mode switched protocols: %+v", ev)
	case <-time.After(300 * time.Millisecond):
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := node0.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol != ProtocolSequencer || st.Epoch != 0 {
		t.Fatalf("advisory mode changed the stack: %s", st)
	}
}

// TestAdaptiveDisabledErrors pins the sentinel: without WithAdaptive,
// Advise and Subscribe(Advice) fail with ErrNoAdaptive.
func TestAdaptiveDisabledErrors(t *testing.T) {
	c, err := New(2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	node, err := c.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Advise(); !errors.Is(err, ErrNoAdaptive) {
		t.Fatalf("Advise error = %v, want ErrNoAdaptive", err)
	}
	if _, err := node.Subscribe(SubscribeOptions{Advice: true}); !errors.Is(err, ErrNoAdaptive) {
		t.Fatalf("Subscribe error = %v, want ErrNoAdaptive", err)
	}
	// The zero-value Advice is returned before any decision.
	c2, err := New(2, WithSeed(2), WithInitialProtocol(ProtocolCT),
		WithAdaptive(LossSensitivePolicy(0, 0), Advisory(), AdaptiveInterval(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	n2, err := c2.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := n2.Advise()
	if err != nil {
		t.Fatal(err)
	}
	if !adv.At.IsZero() {
		t.Fatalf("expected zero advice before first decision, got %+v", adv)
	}
}
