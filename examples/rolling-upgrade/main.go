// Rolling upgrade under load: Figure 5 of the paper in miniature. A
// constant broadcast load runs while the protocol is replaced; the
// example prints the average latency per 100ms bucket so the
// spike-and-recover shape around the replacement is visible in the
// terminal. The switch is confirmed through Node.ChangeProtocol and the
// drain is counted exactly — no sleep-based synchronization.
//
//	go run ./examples/rolling-upgrade
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/dpu"
)

const (
	n        = 3
	rate     = 150 // msgs/s per stack
	duration = 3 * time.Second
	switchAt = 1500 * time.Millisecond
	bin      = 100 * time.Millisecond
)

func main() {
	ctx := context.Background()
	cluster, err := dpu.New(n, dpu.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	nodes := make([]*dpu.Node, n)
	for i := range nodes {
		if nodes[i], err = cluster.Node(i); err != nil {
			log.Fatal(err)
		}
	}

	type sample struct {
		sentAt  time.Duration // offset from start
		latency time.Duration
	}
	var mu sync.Mutex
	var samples []sample
	start := time.Now()

	// Latency observers: the payload carries the send time. Every
	// delivery also ticks the progress channel so the main goroutine
	// can count the drain down to zero instead of guessing with sleeps.
	progress := make(chan struct{}, 16384)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sub, err := nodes[i].Subscribe(dpu.SubscribeOptions{
			Deliveries: true, Buffer: 4096, Policy: dpu.Block,
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range sub.Deliveries() {
				var nanos int64
				fmt.Sscanf(string(d.Data), "%d", &nanos)
				sent := time.Unix(0, nanos)
				mu.Lock()
				samples = append(samples, sample{
					sentAt:  sent.Sub(start),
					latency: time.Since(sent),
				})
				mu.Unlock()
				progress <- struct{}{}
			}
		}()
	}

	// Constant load from every stack; one switch in the middle,
	// initiated concurrently so the load never pauses and confirmed the
	// moment it completes on the initiating stack.
	ticker := time.NewTicker(time.Second / rate)
	defer ticker.Stop()
	var switchWG sync.WaitGroup
	switched := false
	k := 0
	for time.Since(start) < duration {
		<-ticker.C
		payload := fmt.Sprintf("%d", time.Now().UnixNano())
		if err := nodes[k%n].Broadcast(ctx, []byte(payload)); err != nil {
			log.Fatal(err)
		}
		k++
		if !switched && time.Since(start) >= switchAt {
			switched = true
			fmt.Printf("t=%v: replacing abcast/ct by abcast/ct (the paper's experiment)\n",
				time.Since(start).Round(time.Millisecond))
			switchWG.Add(1)
			go func() {
				defer switchWG.Done()
				ev, err := nodes[0].ChangeProtocol(ctx, dpu.ProtocolCT)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("t=%v: switch confirmed at epoch %d (%d messages reissued)\n",
					time.Since(start).Round(time.Millisecond), ev.Epoch, ev.Reissued)
			}()
		}
	}
	switchWG.Wait()

	// Drain: each of the k messages is delivered on all n stacks.
	deadline := time.After(10 * time.Second)
	for received := 0; received < n*k; received++ {
		select {
		case <-progress:
		case <-deadline:
			log.Fatalf("drain stalled at %d of %d deliveries", received, n*k)
		}
	}
	cluster.Close() // ends the subscriptions
	wg.Wait()

	// Bucket by send time and draw a bar chart.
	mu.Lock()
	defer mu.Unlock()
	buckets := make(map[int][]time.Duration)
	maxIdx := 0
	for _, s := range samples {
		idx := int(s.sentAt / bin)
		if idx < 0 {
			continue
		}
		buckets[idx] = append(buckets[idx], s.latency)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	fmt.Printf("\n%8s %8s %9s  latency (one # per 2ms of average)\n", "t[ms]", "msgs", "avg[ms]")
	for idx := 0; idx <= maxIdx; idx++ {
		ls := buckets[idx]
		if len(ls) == 0 {
			continue
		}
		var sum time.Duration
		for _, l := range ls {
			sum += l
		}
		avg := sum / time.Duration(len(ls))
		bars := int(avg / (2 * time.Millisecond))
		if bars > 60 {
			bars = 60
		}
		marker := ""
		if time.Duration(idx)*bin <= switchAt && switchAt < time.Duration(idx+1)*bin {
			marker = " <- replacement"
		}
		fmt.Printf("%8d %8d %9.2f  %s%s\n",
			time.Duration(idx)*bin/time.Millisecond, len(ls),
			float64(avg)/float64(time.Millisecond), strings.Repeat("#", bars), marker)
	}
}
