// Rolling upgrade under load: Figure 5 of the paper in miniature. A
// constant broadcast load runs while the protocol is replaced; the
// example prints the average latency per 100ms bucket so the
// spike-and-recover shape around the replacement is visible in the
// terminal.
//
//	go run ./examples/rolling-upgrade
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/dpu"
)

const (
	n        = 3
	rate     = 150 // msgs/s per stack
	duration = 3 * time.Second
	switchAt = 1500 * time.Millisecond
	bin      = 100 * time.Millisecond
)

func main() {
	cluster, err := dpu.New(n, dpu.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	type sample struct {
		sentAt  time.Duration // offset from start
		latency time.Duration
	}
	var mu sync.Mutex
	var samples []sample
	start := time.Now()

	// Latency observers: the payload carries the send time.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case d, ok := <-cluster.Deliveries(i):
					if !ok {
						return
					}
					var nanos int64
					fmt.Sscanf(string(d.Data), "%d", &nanos)
					sent := time.Unix(0, nanos)
					mu.Lock()
					samples = append(samples, sample{
						sentAt:  sent.Sub(start),
						latency: time.Since(sent),
					})
					mu.Unlock()
				}
			}
		}(i)
	}

	// Constant load from every stack; one switch in the middle.
	ticker := time.NewTicker(time.Second / rate)
	defer ticker.Stop()
	switched := false
	k := 0
	for time.Since(start) < duration {
		<-ticker.C
		payload := fmt.Sprintf("%d", time.Now().UnixNano())
		cluster.Broadcast(k%n, []byte(payload))
		k++
		if !switched && time.Since(start) >= switchAt {
			switched = true
			fmt.Printf("t=%v: replacing abcast/ct by abcast/ct (the paper's experiment)\n",
				time.Since(start).Round(time.Millisecond))
			cluster.ChangeProtocol(0, dpu.ProtocolCT)
		}
	}
	time.Sleep(300 * time.Millisecond) // drain
	close(stop)
	wg.Wait()

	// Bucket by send time and draw a bar chart.
	mu.Lock()
	defer mu.Unlock()
	buckets := make(map[int][]time.Duration)
	maxIdx := 0
	for _, s := range samples {
		idx := int(s.sentAt / bin)
		if idx < 0 {
			continue
		}
		buckets[idx] = append(buckets[idx], s.latency)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	fmt.Printf("\n%8s %8s %9s  latency (one # per 2ms of average)\n", "t[ms]", "msgs", "avg[ms]")
	for idx := 0; idx <= maxIdx; idx++ {
		ls := buckets[idx]
		if len(ls) == 0 {
			continue
		}
		var sum time.Duration
		for _, l := range ls {
			sum += l
		}
		avg := sum / time.Duration(len(ls))
		bars := int(avg / (2 * time.Millisecond))
		if bars > 60 {
			bars = 60
		}
		marker := ""
		if time.Duration(idx)*bin <= switchAt && switchAt < time.Duration(idx+1)*bin {
			marker = " <- replacement"
		}
		fmt.Printf("%8d %8d %9.2f  %s%s\n",
			time.Duration(idx)*bin/time.Millisecond, len(ls),
			float64(avg)/float64(time.Millisecond), strings.Repeat("#", bars), marker)
	}
}
