// Consensus replacement — the paper's future-work extension ([16],
// "Dynamic update of distributed agreement protocols") realised through
// the DPU mechanism itself: a CT atomic-broadcast variant is registered
// that requires its *own* consensus service (with a different
// coordinator policy), and switching to it makes the create_module
// recursion of Algorithm 1 instantiate the new consensus protocol as a
// required service. The old epoch keeps draining on the old consensus
// protocol; the new epoch runs entirely on the new one.
//
// The switch itself is one ChangeProtocolAll call: it returns only when
// every stack in this process has completed the replacement.
//
//	go run ./examples/consensus-switch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dpu"
	"repro/internal/consensus"
)

func main() {
	ctx := context.Background()
	cluster, err := dpu.New(3,
		dpu.WithSeed(41),
		// Registers protocol "abcast/ct-fixed": CT atomic broadcast on a
		// separate consensus module with a leader-biased coordinator.
		dpu.WithConsensusVariant("abcast/ct-fixed", consensus.Fixed),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	nodes := make([]*dpu.Node, 3)
	subs := make([]*dpu.Subscription, 3)
	for i := range nodes {
		if nodes[i], err = cluster.Node(i); err != nil {
			log.Fatal(err)
		}
		if subs[i], err = nodes[i].Subscribe(dpu.SubscribeOptions{Deliveries: true}); err != nil {
			log.Fatal(err)
		}
	}

	collect := func(k int) [][]string {
		out := make([][]string, 3)
		for i := 0; i < 3; i++ {
			for len(out[i]) < k {
				d := <-subs[i].Deliveries()
				out[i] = append(out[i], fmt.Sprintf("%d:%s", d.Origin, d.Data))
			}
		}
		return out
	}

	fmt.Println("phase 1: rotating-coordinator consensus underneath abcast/ct")
	for i := 0; i < 5; i++ {
		if err := nodes[i%3].Broadcast(ctx, []byte(fmt.Sprintf("rotating-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	collect(5)

	fmt.Println("phase 2: switching the agreement substrate on the fly")
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	ev, err := cluster.ChangeProtocolAll(sctx, "abcast/ct-fixed")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st, err := cluster.WaitForEpoch(sctx, i, ev.Epoch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stack %d: new module %s at epoch %d (its consensus service was\n"+
			"           created by create_module recursion; the old one keeps draining)\n",
			i, st.Protocol, st.Epoch)
	}
	cancel()

	fmt.Println("phase 3: leader-biased consensus underneath abcast/ct-fixed")
	for i := 0; i < 5; i++ {
		if err := nodes[i%3].Broadcast(ctx, []byte(fmt.Sprintf("fixed-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	seqs := collect(5)
	for i := 1; i < 3; i++ {
		for k := range seqs[0] {
			if seqs[i][k] != seqs[0][k] {
				log.Fatalf("stack %d diverged at %d: %s vs %s", i, k, seqs[i][k], seqs[0][k])
			}
		}
	}
	st, err := nodes[0].Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal order preserved across the agreement-protocol replacement; "+
		"final protocol %s (epoch %d)\n", st.Protocol, st.Epoch)
}
