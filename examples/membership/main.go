// Group membership across a protocol replacement: the GM module of the
// paper's Figure 4 depends on the atomic-broadcast service and keeps
// producing consistent views while the protocol underneath it is
// replaced — the module is not even aware the update happened. This is
// the paper's modularity claim, demonstrated end to end, with the
// switch confirmed on every stack through the epoch barrier instead of
// waiting on event channels.
//
//	go run ./examples/membership
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dpu"
)

func main() {
	ctx := context.Background()
	cluster, err := dpu.New(4, dpu.WithSeed(31), dpu.WithMembership())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	nodes := make([]*dpu.Node, 4)
	subs := make([]*dpu.Subscription, 4)
	for i := range nodes {
		if nodes[i], err = cluster.Node(i); err != nil {
			log.Fatal(err)
		}
		if subs[i], err = nodes[i].Subscribe(dpu.SubscribeOptions{Views: true}); err != nil {
			log.Fatal(err)
		}
	}

	show := func(what string) {
		for i := 0; i < 4; i++ {
			select {
			case v := <-subs[i].Views():
				fmt.Printf("  stack %d: view %d = %v\n", i, v.ID, v.Members)
			case <-time.After(20 * time.Second):
				log.Fatalf("stack %d: no view after %s", i, what)
			}
		}
	}

	fmt.Println("member 3 leaves (ordered through abcast/ct):")
	if err := nodes[0].Leave(3); err != nil {
		log.Fatal(err)
	}
	show("leave")

	fmt.Println("\nreplacing the broadcast protocol under GM: ct -> sequencer")
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	ev, err := nodes[2].ChangeProtocol(sctx, dpu.ProtocolSequencer)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		st, err := cluster.WaitForEpoch(sctx, i, ev.Epoch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stack %d now on %s (epoch %d)\n", i, st.Protocol, st.Epoch)
	}
	cancel()

	fmt.Println("\nmember 3 rejoins (ordered through abcast/seq — GM never noticed the switch):")
	if err := nodes[1].Join(3); err != nil {
		log.Fatal(err)
	}
	show("join")

	fmt.Println("\nviews stayed consistent across the dynamic protocol update")
}
