// Elastic membership across a protocol replacement: the GM module of
// the paper's Figure 4 depends on the atomic-broadcast service and
// keeps producing consistent views while the protocol underneath it is
// replaced. Since views drive every layer of the stack, membership is
// not just bookkeeping: evicting a member reconfigures rbcast
// destinations, rp2p peer state, fd monitors, consensus quorums and
// transport routes on every survivor, and a node added at runtime
// boots on the coherent cut its join created — delivering the exact
// totally-ordered suffix the founders deliver.
//
//	go run ./examples/membership
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dpu"
)

func main() {
	ctx := context.Background()
	cluster, err := dpu.New(4, dpu.WithSeed(31), dpu.WithMembership())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	nodes := make([]*dpu.Node, 4)
	subs := make([]*dpu.Subscription, 4)
	for i := range nodes {
		if nodes[i], err = cluster.Node(i); err != nil {
			log.Fatal(err)
		}
		if subs[i], err = nodes[i].Subscribe(dpu.SubscribeOptions{Views: true}); err != nil {
			log.Fatal(err)
		}
	}

	showViews := func(stacks []int, what string) {
		for _, i := range stacks {
			select {
			case v := <-subs[i].Views():
				fmt.Printf("  stack %d: view %d = %v\n", i, v.ID, v.Members)
			case <-time.After(20 * time.Second):
				log.Fatalf("stack %d: no view after %s", i, what)
			}
		}
	}

	fmt.Println("member 3 is evicted (ordered through abcast/ct; every layer drops it):")
	ectx, cancel := context.WithTimeout(ctx, 20*time.Second)
	if _, err := nodes[0].Evict(ectx, 3); err != nil {
		log.Fatal(err)
	}
	cancel()
	showViews([]int{0, 1, 2, 3}, "evict") // the evicted member sees its own final view

	fmt.Println("\nreplacing the broadcast protocol under GM: ct -> sequencer")
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	ev, err := nodes[2].ChangeProtocol(sctx, dpu.ProtocolSequencer)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st, err := cluster.WaitForEpoch(sctx, i, ev.Epoch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stack %d now on %s (epoch %d)\n", i, st.Protocol, st.Epoch)
	}
	cancel()

	fmt.Println("\na NEW node joins at runtime (ordered through abcast/seq — GM never noticed the switch):")
	jctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	joiner, err := cluster.AddNode(jctx, "")
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	showViews([]int{0, 1, 2}, "join")
	st, err := joiner.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  joiner is member %d, booted at epoch %d on %s, view %d = %v\n",
		joiner.Index(), st.Epoch, st.Protocol, st.ViewID, st.Members)

	// The joiner participates in the total order immediately: broadcast
	// from it and watch a founder deliver.
	fsub, err := nodes[0].Subscribe(dpu.SubscribeOptions{Deliveries: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := joiner.Broadcast(ctx, []byte("hello from the newcomer")); err != nil {
		log.Fatal(err)
	}
	select {
	case d := <-fsub.Deliveries():
		fmt.Printf("\nstack 0 delivered %q from member %d\n", d.Data, d.Origin)
	case <-time.After(20 * time.Second):
		log.Fatal("founder never delivered the newcomer's broadcast")
	}

	fmt.Println("\nviews stayed consistent across eviction, protocol update and runtime join")
}
