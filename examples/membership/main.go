// Group membership across a protocol replacement: the GM module of the
// paper's Figure 4 depends on the atomic-broadcast service and keeps
// producing consistent views while the protocol underneath it is
// replaced — the module is not even aware the update happened. This is
// the paper's modularity claim, demonstrated end to end.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dpu"
)

func main() {
	cluster, err := dpu.New(4, dpu.WithSeed(31), dpu.WithMembership())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	show := func(what string) {
		for i := 0; i < 4; i++ {
			select {
			case v := <-cluster.Views(i):
				fmt.Printf("  stack %d: view %d = %v\n", i, v.ID, v.Members)
			case <-time.After(20 * time.Second):
				log.Fatalf("stack %d: no view after %s", i, what)
			}
		}
	}

	fmt.Println("member 3 leaves (ordered through abcast/ct):")
	if err := cluster.Leave(0, 3); err != nil {
		log.Fatal(err)
	}
	show("leave")

	fmt.Println("\nreplacing the broadcast protocol under GM: ct -> sequencer")
	if err := cluster.ChangeProtocol(2, dpu.ProtocolSequencer); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ev := <-cluster.Switches(i)
		fmt.Printf("  stack %d now on %s (epoch %d)\n", i, ev.Protocol, ev.Epoch)
	}

	fmt.Println("\nmember 3 rejoins (ordered through abcast/seq — GM never noticed the switch):")
	if err := cluster.Join(1, 3); err != nil {
		log.Fatal(err)
	}
	show("join")

	fmt.Println("\nviews stayed consistent across the dynamic protocol update")
}
