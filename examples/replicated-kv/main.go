// Replicated key-value store: the paper's motivating use case for group
// communication — state machine replication on atomic broadcast — with
// two protocol upgrades performed under write load. Because every
// replica applies the same totally-ordered command stream, replicas
// stay byte-identical across the upgrades; the example proves it by
// hashing each replica's state.
//
// The writers are paced by the library itself: Node.Broadcast blocks
// when the outstanding window fills (WithMaxOutstanding), and each
// upgrade is a confirmed Node.ChangeProtocol — there is not a single
// sleep in the write path. The replicas subscribe with the Block lag
// policy: a state machine must apply every command, so backpressure is
// the correct lag behavior, never dropping.
//
//	go run ./examples/replicated-kv
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"repro/dpu"
)

// store is one replica's state machine: a map applied from the
// totally-ordered command stream ("set key value" / "del key").
type store struct {
	mu      sync.Mutex
	data    map[string]string
	applied int
}

func (s *store) apply(cmd string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := strings.SplitN(cmd, " ", 3)
	switch parts[0] {
	case "set":
		s.data[parts[1]] = parts[2]
	case "del":
		delete(s.data, parts[1])
	}
	s.applied++
}

// digest hashes the whole state deterministically.
func (s *store) digest() (string, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s;", k, s.data[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:16], s.applied
}

func main() {
	const n = 3
	const writes = 300
	const window = 64
	ctx := context.Background()
	cluster, err := dpu.New(n, dpu.WithSeed(11), dpu.WithMaxOutstanding(window))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	nodes := make([]*dpu.Node, n)
	for i := range nodes {
		if nodes[i], err = cluster.Node(i); err != nil {
			log.Fatal(err)
		}
	}

	// One replica per stack, applying its stack's delivery stream.
	replicas := make([]*store, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sub, err := nodes[i].Subscribe(dpu.SubscribeOptions{
			Deliveries: true, Buffer: 512, Policy: dpu.Block,
		})
		if err != nil {
			log.Fatal(err)
		}
		replicas[i] = &store{data: make(map[string]string)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for replicas[i].applied < writes {
				d, ok := <-sub.Deliveries()
				if !ok {
					return
				}
				replicas[i].apply(string(d.Data))
			}
		}(i)
	}

	// Writers on every stack; both protocol upgrades happen mid-stream
	// and block only their own writer until confirmed locally.
	fmt.Printf("writing %d commands across %d clients (outstanding window %d) while upgrading the broadcast protocol...\n",
		writes, n, window)
	for k := 0; k < writes; k++ {
		var cmd string
		switch {
		case k%10 == 9:
			cmd = fmt.Sprintf("del user-%d", k%50)
		default:
			cmd = fmt.Sprintf("set user-%d rev-%d", k%50, k)
		}
		if err := nodes[k%n].Broadcast(ctx, []byte(cmd)); err != nil {
			log.Fatal(err)
		}
		if k == writes/3 {
			ev, err := nodes[1].ChangeProtocol(ctx, dpu.ProtocolToken)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> live upgrade confirmed: %s at epoch %d (%d reissued)\n",
				ev.Protocol, ev.Epoch, ev.Reissued)
		}
		if k == 2*writes/3 {
			ev, err := nodes[2].ChangeProtocol(ctx, dpu.ProtocolCT)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> live upgrade confirmed: %s at epoch %d (%d reissued)\n",
				ev.Protocol, ev.Epoch, ev.Reissued)
		}
	}
	wg.Wait()

	fmt.Println("\nreplica digests after", writes, "commands and two upgrades:")
	ref, _ := replicas[0].digest()
	consistent := true
	for i, r := range replicas {
		d, applied := r.digest()
		status := "OK"
		if d != ref {
			status = "MISMATCH"
			consistent = false
		}
		fmt.Printf("  replica %d: %s (%d commands applied) %s\n", i, d, applied, status)
	}
	if !consistent {
		log.Fatal("replicas diverged — total order was violated")
	}
	st, err := nodes[0].Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all replicas identical; final protocol %s (epoch %d)\n", st.Protocol, st.Epoch)
}
