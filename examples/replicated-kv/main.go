// Replicated key-value store: the paper's motivating use case for group
// communication — state machine replication on atomic broadcast — with
// a protocol upgrade performed under write load. Because every replica
// applies the same totally-ordered command stream, replicas stay
// byte-identical across the upgrade; the example proves it by hashing
// each replica's state.
//
//	go run ./examples/replicated-kv
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/dpu"
)

// store is one replica's state machine: a map applied from the
// totally-ordered command stream ("set key value" / "del key").
type store struct {
	mu      sync.Mutex
	data    map[string]string
	applied int
}

func (s *store) apply(cmd string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := strings.SplitN(cmd, " ", 3)
	switch parts[0] {
	case "set":
		s.data[parts[1]] = parts[2]
	case "del":
		delete(s.data, parts[1])
	}
	s.applied++
}

// digest hashes the whole state deterministically.
func (s *store) digest() (string, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s;", k, s.data[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:16], s.applied
}

func main() {
	const n = 3
	const writes = 300
	cluster, err := dpu.New(n, dpu.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// One replica per stack, applying its stack's delivery stream.
	replicas := make([]*store, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		replicas[i] = &store{data: make(map[string]string)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for replicas[i].applied < writes {
				d, ok := <-cluster.Deliveries(i)
				if !ok {
					return
				}
				replicas[i].apply(string(d.Data))
			}
		}(i)
	}

	// Writers on every stack; the protocol upgrade happens mid-stream.
	fmt.Printf("writing %d commands across %d clients while upgrading the broadcast protocol...\n", writes, n)
	for k := 0; k < writes; k++ {
		var cmd string
		switch {
		case k%10 == 9:
			cmd = fmt.Sprintf("del user-%d", k%50)
		default:
			cmd = fmt.Sprintf("set user-%d rev-%d", k%50, k)
		}
		if err := cluster.Broadcast(k%n, []byte(cmd)); err != nil {
			log.Fatal(err)
		}
		if k == writes/3 {
			fmt.Println("  -> live upgrade: abcast/ct -> abcast/token")
			cluster.ChangeProtocol(1, dpu.ProtocolToken)
		}
		if k == 2*writes/3 {
			fmt.Println("  -> live upgrade: abcast/token -> abcast/ct")
			cluster.ChangeProtocol(2, dpu.ProtocolCT)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	fmt.Println("\nreplica digests after", writes, "commands and two upgrades:")
	ref, _ := replicas[0].digest()
	consistent := true
	for i, r := range replicas {
		d, applied := r.digest()
		status := "OK"
		if d != ref {
			status = "MISMATCH"
			consistent = false
		}
		fmt.Printf("  replica %d: %s (%d commands applied) %s\n", i, d, applied, status)
	}
	if !consistent {
		log.Fatal("replicas diverged — total order was violated")
	}
	st, _ := cluster.Status(0)
	fmt.Printf("all replicas identical; final protocol %s (epoch %d)\n", st.Protocol, st.Epoch)
}
