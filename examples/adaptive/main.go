// Adaptive: the cluster decides for itself. A loss-sensitive
// controller (dpu.WithAdaptive) samples the stack's own runtime
// signals — the RP2P retransmit ratio as a loss estimate — and drives
// ChangeProtocolAll when the environment changes: the network turns
// lossy, the controller moves the group onto the loss-tolerant
// consensus protocol; the network recovers, it moves back to the lean
// sequencer. Every decision is observable as an Advice event.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dpu"
)

func main() {
	// Three stacks on the simulated LAN, starting on the fixed-sequencer
	// protocol (fast on a clean path, fragile under loss). The adaptive
	// engine samples every 20ms, needs 2 agreeing samples before acting
	// (hysteresis) and then holds for 250ms (cooldown).
	cluster, err := dpu.New(3,
		dpu.WithSeed(42),
		dpu.WithInitialProtocol(dpu.ProtocolSequencer),
		dpu.WithAdaptive(dpu.LossSensitivePolicy(0, 0),
			dpu.AdaptiveInterval(20*time.Millisecond),
			dpu.AdaptiveConfirm(2),
			dpu.AdaptiveCooldown(250*time.Millisecond)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	node, err := cluster.Node(0)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := node.Subscribe(dpu.SubscribeOptions{Advice: true, Buffer: 16})
	if err != nil {
		log.Fatal(err)
	}

	// Background workload: the controller can only estimate loss from
	// traffic, so keep some flowing.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		sender, err := cluster.Node(i)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for ctx.Err() == nil {
				if err := sender.Broadcast(ctx, []byte("workload")); err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	status := func(tag string) {
		st, err := node.Status(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %s\n", tag, st)
	}
	waitAdvice := func() dpu.Advice {
		select {
		case a := <-sub.Advice():
			return a
		case <-time.After(30 * time.Second):
			log.Fatal("controller made no decision")
			return dpu.Advice{}
		}
	}

	status("initial:")

	// Degrade the network to 30% packet loss, live.
	fmt.Println("\ninjecting 30% packet loss...")
	if err := cluster.SetLoss(0.30); err != nil {
		log.Fatal(err)
	}
	a := waitAdvice()
	fmt.Printf("controller: %s -> %s because %s (loss estimate %.2f)\n",
		a.Current, a.Target, a.Reason, a.Loss)
	status("under loss:")

	// Heal it.
	fmt.Println("\nhealing the network...")
	if err := cluster.SetLoss(0); err != nil {
		log.Fatal(err)
	}
	a = waitAdvice()
	fmt.Printf("controller: %s -> %s because %s (loss estimate %.2f)\n",
		a.Current, a.Target, a.Reason, a.Loss)
	status("recovered:")

	// The last decision is always queryable.
	last, err := node.Advise()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlast decision: policy=%s target=%s acted=%v\n", last.Policy, last.Target, last.Acted)
}
