// Quickstart: three stacks, a totally-ordered broadcast stream, and a
// live protocol replacement in the middle of it — driven through the
// context-first Node API, so the switch is a confirmed event rather
// than a fire-and-forget request.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dpu"
)

func main() {
	ctx := context.Background()

	// Three protocol stacks over a simulated switched LAN, running the
	// Chandra-Toueg atomic broadcast (the paper's Figure 4 stack).
	cluster, err := dpu.New(3, dpu.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Node handles are validated once; a bad index would come back as
	// dpu.ErrOutOfRange instead of a panic.
	nodes := make([]*dpu.Node, 3)
	for i := range nodes {
		if nodes[i], err = cluster.Node(i); err != nil {
			log.Fatal(err)
		}
	}
	// Typed, independently-buffered delivery streams for two observers.
	sub1, err := nodes[1].Subscribe(dpu.SubscribeOptions{Deliveries: true})
	if err != nil {
		log.Fatal(err)
	}
	sub2, err := nodes[2].Subscribe(dpu.SubscribeOptions{Deliveries: true})
	if err != nil {
		log.Fatal(err)
	}

	// Broadcast a few messages from different stacks.
	for i := 0; i < 5; i++ {
		if err := nodes[i%3].Broadcast(ctx, []byte(fmt.Sprintf("before-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Replace the protocol ON THE FLY: no stack stops serving, and the
	// total order spans the replacement. ChangeProtocol blocks until
	// stack 0 has completed the switch (Algorithm 1's seqNumber moment)
	// and returns the completed event.
	ev, err := nodes[0].ChangeProtocol(ctx, dpu.ProtocolSequencer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stack 0 switched to %s at epoch %d, reissuing %d in-flight messages\n\n",
		ev.Protocol, ev.Epoch, ev.Reissued)

	for i := 0; i < 5; i++ {
		if err := nodes[i%3].Broadcast(ctx, []byte(fmt.Sprintf("after-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Every stack observes the same sequence. Print stack 1's view and
	// verify stack 2 agrees.
	var seq1, seq2 []string
	for len(seq1) < 10 {
		d := <-sub1.Deliveries()
		seq1 = append(seq1, fmt.Sprintf("stack%d:%s", d.Origin, d.Data))
	}
	for len(seq2) < 10 {
		d := <-sub2.Deliveries()
		seq2 = append(seq2, fmt.Sprintf("stack%d:%s", d.Origin, d.Data))
	}
	fmt.Println("deliveries in total order (as seen by stack 1):")
	for i, s := range seq1 {
		marker := ""
		if seq2[i] != s {
			marker = "   <-- DIVERGED (bug!)"
		}
		fmt.Printf("  %2d. %s%s\n", i+1, s, marker)
	}

	// The other stacks confirm the same epoch deterministically — no
	// sleeping, no polling.
	st, err := cluster.WaitForEpoch(ctx, 1, ev.Epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstack 1 confirms: protocol=%s epoch=%d\n", st.Protocol, st.Epoch)
}
