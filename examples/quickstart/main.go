// Quickstart: three stacks, a totally-ordered broadcast stream, and a
// live protocol replacement in the middle of it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/dpu"
)

func main() {
	// Three protocol stacks over a simulated switched LAN, running the
	// Chandra-Toueg atomic broadcast (the paper's Figure 4 stack).
	cluster, err := dpu.New(3, dpu.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Broadcast a few messages from different stacks.
	for i := 0; i < 5; i++ {
		if err := cluster.Broadcast(i%3, []byte(fmt.Sprintf("before-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Replace the protocol ON THE FLY: no stack stops serving, and the
	// total order spans the replacement.
	if err := cluster.ChangeProtocol(0, dpu.ProtocolSequencer); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if err := cluster.Broadcast(i%3, []byte(fmt.Sprintf("after-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Every stack observes the same sequence. Print stack 1's view and
	// verify stack 2 agrees.
	var seq1, seq2 []string
	for len(seq1) < 10 {
		d := <-cluster.Deliveries(1)
		seq1 = append(seq1, fmt.Sprintf("stack%d:%s", d.Origin, d.Data))
	}
	for len(seq2) < 10 {
		d := <-cluster.Deliveries(2)
		seq2 = append(seq2, fmt.Sprintf("stack%d:%s", d.Origin, d.Data))
	}
	fmt.Println("deliveries in total order (as seen by stack 1):")
	for i, s := range seq1 {
		marker := ""
		if seq2[i] != s {
			marker = "   <-- DIVERGED (bug!)"
		}
		fmt.Printf("  %2d. %s%s\n", i+1, s, marker)
	}

	ev := <-cluster.Switches(1)
	fmt.Printf("\nstack 1 switched to %s at epoch %d, reissuing %d in-flight messages\n",
		ev.Protocol, ev.Epoch, ev.Reissued)
	st, _ := cluster.Status(1)
	fmt.Printf("final status: protocol=%s epoch=%d\n", st.Protocol, st.Epoch)
}
