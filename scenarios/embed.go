// Package scenarios embeds the in-tree scenario corpus: the *.dpu.yaml
// timelines swept by `go test ./internal/scenario -run TestCorpus` and
// runnable individually with `dpu-bench -scenario <name>`. See
// docs/SCENARIOS.md for the DSL and for how to add a corpus entry.
package scenarios

import "embed"

// FS holds every corpus scenario file.
//
//go:embed *.dpu.yaml
var FS embed.FS
